// The simulated UDP network: unreliable, unordered datagram delivery with
// NAT semantics.
//
// send() charges traffic, records the sender's outbound NAT mapping, rolls
// the loss die, samples a one-way latency and schedules delivery. At
// delivery time the packet is dropped if the receiver has left the network
// or if the receiver's NAT/firewall filter rejects the sender — exactly
// the property ("private nodes cannot be reached unless they initiated
// contact") that all the protocols in this repository are designed around.
//
// Packet layer (net/packet): with a PacketConfig whose mtu is positive, a
// message larger than the MTU is split into framed fragments, each its
// own datagram — its own loss die, latency sample and byte charge — and
// reassembled at the receiver (FEC repair fragments optional); incomplete
// reassemblies are garbage-collected after a deterministic timeout. A
// positive bandwidth_bps additionally meters every sender through a
// TokenBucket whose queueing delay adds to the propagation latency, so
// saturation shows up as RTT inflation. With the default config
// (mtu=0, no bandwidth cap) none of this machinery runs and the Network
// is byte-identical to its pre-packet self.
//
// Parallel-engine contract: send() and deliver() run on worker threads
// when the round-synchronous engine is active, so every touch of shared
// state — the traffic meter, the loss/latency RNG, the drop counters, and
// the event queue — is routed through Simulator::defer(), which replays
// the effects serially in deterministic order. Only the calling node's
// own NAT box (and, on delivery, the receiving node's own reassembly
// buffers — sharded by receiver exactly like the NAT box) is mutated
// inline.  Under the sequential engine defer() degenerates to an
// immediate call and nothing changes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/latency.hpp"
#include "net/loss.hpp"
#include "net/message.hpp"
#include "net/nat.hpp"
#include "net/packet.hpp"
#include "net/token_bucket.hpp"
#include "net/traffic.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace croupier::net {

class Network {
 public:
  struct DropStats {
    std::uint64_t loss = 0;        // random packet loss (datagrams)
    std::uint64_t nat_filtered = 0;  // receiver NAT/firewall rejected sender
    std::uint64_t dead_receiver = 0;  // receiver left before delivery
    std::uint64_t delivered = 0;      // messages handed to handlers

    // Wire bytes (UDP/IP headers included) per datagram outcome.
    std::uint64_t loss_bytes = 0;
    std::uint64_t nat_filtered_bytes = 0;
    std::uint64_t dead_receiver_bytes = 0;
    std::uint64_t delivered_bytes = 0;  // accepted by live receivers

    // Packet layer (mtu > 0) only.
    std::uint64_t fragments_sent = 0;
    std::uint64_t fragments_lost = 0;  // loss + NAT-filtered + dead receiver
    std::uint64_t fragments_reassembled = 0;  // consumed by completed messages
    std::uint64_t fragments_expired = 0;      // dropped by reassembly GC
  };

  /// `loss` may be nullptr (a loss-free network: the loss die is never
  /// rolled, the historic loss=0 hot path).
  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
          sim::RngStream rng, std::unique_ptr<LossModel> loss = nullptr);

  /// Convenience for the historic uniform-scalar call sites (tests):
  /// wraps the probability in a UniformLoss model (0 = lossless).
  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
          sim::RngStream rng, double loss_probability);

  /// Arms the packet layer (MTU fragmentation, FEC, bandwidth caps).
  /// Call before any traffic flows; the default PacketConfig keeps every
  /// pre-packet run byte-identical.
  void set_packet_config(const PacketConfig& cfg);
  [[nodiscard]] const PacketConfig& packet_config() const { return packet_; }

  /// Registers a node. The handler must outlive the attachment.
  void attach(NodeId id, const NatConfig& cfg, MessageHandler& handler);

  /// Removes a node (death/leave). In-flight packets to it are dropped.
  void detach(NodeId id);

  /// Swaps a node's ground-truth NAT configuration in place (oscillating
  /// reclassification scenarios). The NAT box is rebuilt from scratch and
  /// half-finished reassemblies are dropped — a real re-homing loses its
  /// mappings the same way.
  void reclassify(NodeId id, const NatConfig& cfg);

  [[nodiscard]] bool attached(NodeId id) const {
    return nodes_.contains(id);
  }
  [[nodiscard]] std::size_t attached_count() const { return nodes_.size(); }

  /// Ground-truth configuration queries.
  [[nodiscard]] NatType type_of(NodeId id) const;
  [[nodiscard]] const NatBox* nat_of(NodeId id) const;
  [[nodiscard]] IpAddr local_ip(NodeId id) const;
  [[nodiscard]] IpAddr public_ip(NodeId id) const;

  /// Sends a datagram. `from` must be attached; `to` may be anything (the
  /// packet is silently dropped if unreachable, like real UDP).
  void send(NodeId from, NodeId to, MessagePtr msg);

  /// Decides the affinity tag of a delivery event: the receiving node for
  /// messages handled by per-node protocol state, kSerialAffinity for
  /// messages whose handlers touch cross-node state (NAT identification,
  /// application-layer traffic). Unset = every delivery is serial, which
  /// is always safe.
  using DeliveryAffinityFn =
      std::function<sim::Affinity(NodeId to, const Message& msg)>;
  void set_delivery_affinity(DeliveryAffinityFn fn) {
    delivery_affinity_ = std::move(fn);
  }

  /// Lower bound on the one-way latency of every packet (the parallel
  /// engine's causal lookahead; token-bucket queueing only ever adds).
  [[nodiscard]] sim::Duration min_latency() const {
    return latency_->min_latency();
  }

  /// The pairwise latency structure (scenario processes use
  /// base_latency() as the metric for latency-correlated cohorts).
  [[nodiscard]] const LatencyModel& latency_model() const {
    return *latency_;
  }

  [[nodiscard]] TrafficMeter& meter() { return meter_; }
  [[nodiscard]] const DropStats& drops() const { return drops_; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

  /// Incomplete reassembly entries currently buffered at `id` (tests).
  [[nodiscard]] std::size_t pending_reassemblies(NodeId id) const;

 private:
  /// One in-progress fragmented message at a receiver. The carried
  /// MessagePtr is what reaches the handler once the byte-level
  /// reassembly completes (the entry survives, inert, until its GC
  /// timeout so late duplicates cannot re-open it).
  struct Assembly {
    FragmentAssembly frags;
    MessagePtr msg;
  };

  struct NodeState {
    NatConfig cfg;
    std::optional<NatBox> nat;  // engaged for Natted/Firewalled nodes
    MessageHandler* handler = nullptr;
    /// Reassembly buffers, keyed by msg_id. Receiver-sharded state like
    /// the NAT box: mutated inline from delivery events, never iterated.
    std::unordered_map<std::uint64_t, Assembly> assemblies;
  };

  /// The shared-state half of send(): meter charge, bucket charge, loss
  /// roll, latency sample, delivery scheduling. Runs serially (directly
  /// from send() or replayed by the parallel merge).
  void finish_send(NodeId from, NodeId to, MessagePtr msg, std::size_t bytes);
  /// Same serial half for a fragmented message: assigns the msg_id and
  /// runs the per-datagram pipeline for every fragment.
  void finish_send_fragments(NodeId from, NodeId to, MessagePtr msg,
                             std::vector<Fragment> frags);
  void deliver(NodeId from, NodeId to, MessagePtr msg, std::size_t bytes);
  void deliver_fragment(NodeId from, NodeId to, MessagePtr msg,
                        Fragment frag, std::size_t bytes);
  /// Reassembly GC: drops the entry for (to, msg_id); counts its
  /// fragments as expired when the message never completed.
  void expire_assembly(NodeId to, std::uint64_t msg_id);

  /// Sender's token-bucket queueing delay for one datagram (0 when
  /// bandwidth metering is off). Serial-half only.
  sim::Duration bucket_delay(NodeId from, std::size_t bytes);

  /// Loss probability for a (from, to) datagram right now; 0 without a
  /// loss model.
  [[nodiscard]] double loss_probability(NodeId from, NodeId to) const;

  /// NAT class for the loss model; a node that already left resolves to
  /// Public (the packet is doomed at delivery anyway — the rule only has
  /// to be deterministic so both engines roll the same die).
  [[nodiscard]] NatType class_or_public(NodeId id) const;

  sim::Simulator& simulator_;
  std::unique_ptr<LatencyModel> latency_;
  sim::RngStream rng_;
  std::unique_ptr<LossModel> loss_;
  bool loss_class_sensitive_ = false;  // cached loss_->class_sensitive()
  PacketConfig packet_;
  Fragmenter fragmenter_{PacketConfig{}};
  std::uint64_t next_msg_id_ = 1;  // serial half only
  std::unordered_map<NodeId, NodeState> nodes_;
  /// Per-sender buckets, created on first charge; serial-half only,
  /// never iterated.
  std::unordered_map<NodeId, TokenBucket> buckets_;
  TrafficMeter meter_;
  DropStats drops_;
  DeliveryAffinityFn delivery_affinity_;
};

}  // namespace croupier::net
