// The simulated UDP network: unreliable, unordered datagram delivery with
// NAT semantics.
//
// send() charges traffic, records the sender's outbound NAT mapping, rolls
// the loss die, samples a one-way latency and schedules delivery. At
// delivery time the packet is dropped if the receiver has left the network
// or if the receiver's NAT/firewall filter rejects the sender — exactly
// the property ("private nodes cannot be reached unless they initiated
// contact") that all the protocols in this repository are designed around.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "net/address.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "net/nat.hpp"
#include "net/traffic.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace croupier::net {

class Network {
 public:
  struct DropStats {
    std::uint64_t loss = 0;        // random packet loss
    std::uint64_t nat_filtered = 0;  // receiver NAT/firewall rejected sender
    std::uint64_t dead_receiver = 0;  // receiver left before delivery
    std::uint64_t delivered = 0;
  };

  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
          sim::RngStream rng, double loss_probability = 0.0);

  /// Registers a node. The handler must outlive the attachment.
  void attach(NodeId id, const NatConfig& cfg, MessageHandler& handler);

  /// Removes a node (death/leave). In-flight packets to it are dropped.
  void detach(NodeId id);

  [[nodiscard]] bool attached(NodeId id) const {
    return nodes_.contains(id);
  }
  [[nodiscard]] std::size_t attached_count() const { return nodes_.size(); }

  /// Ground-truth configuration queries.
  [[nodiscard]] NatType type_of(NodeId id) const;
  [[nodiscard]] const NatBox* nat_of(NodeId id) const;
  [[nodiscard]] IpAddr local_ip(NodeId id) const;
  [[nodiscard]] IpAddr public_ip(NodeId id) const;

  /// Sends a datagram. `from` must be attached; `to` may be anything (the
  /// packet is silently dropped if unreachable, like real UDP).
  void send(NodeId from, NodeId to, MessagePtr msg);

  [[nodiscard]] TrafficMeter& meter() { return meter_; }
  [[nodiscard]] const DropStats& drops() const { return drops_; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

 private:
  struct NodeState {
    NatConfig cfg;
    std::optional<NatBox> nat;  // engaged for Natted/Firewalled nodes
    MessageHandler* handler = nullptr;
  };

  void deliver(NodeId from, NodeId to, MessagePtr msg, std::size_t bytes);

  sim::Simulator& simulator_;
  std::unique_ptr<LatencyModel> latency_;
  sim::RngStream rng_;
  double loss_probability_;
  std::unordered_map<NodeId, NodeState> nodes_;
  TrafficMeter meter_;
  DropStats drops_;
};

}  // namespace croupier::net
