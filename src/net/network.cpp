#include "net/network.hpp"

#include <cstdio>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "sim/conflict.hpp"
#include "wire/wire.hpp"

namespace croupier::net {

Network::Network(sim::Simulator& simulator,
                 std::unique_ptr<LatencyModel> latency, sim::RngStream rng,
                 std::unique_ptr<LossModel> loss)
    : simulator_(simulator),
      latency_(std::move(latency)),
      rng_(rng),
      loss_(std::move(loss)),
      loss_class_sensitive_(loss_ != nullptr && loss_->class_sensitive()) {
  CROUPIER_ASSERT(latency_ != nullptr);
}

Network::Network(sim::Simulator& simulator,
                 std::unique_ptr<LatencyModel> latency, sim::RngStream rng,
                 double loss_probability)
    : Network(simulator, std::move(latency), rng,
              make_loss_model(LossConfig::uniform(loss_probability))) {}

void Network::set_packet_config(const PacketConfig& cfg) {
  CROUPIER_ASSERT_MSG(next_msg_id_ == 1 && meter_.per_node().empty(),
                      "packet config must be set before traffic flows");
  packet_ = cfg;
  fragmenter_ = Fragmenter(cfg);
}

void Network::attach(NodeId id, const NatConfig& cfg,
                     MessageHandler& handler) {
  CROUPIER_ASSERT_MSG(!nodes_.contains(id), "NodeId already attached");
  NodeState state;
  state.cfg = cfg;
  state.handler = &handler;
  if (!cfg.behaves_public()) state.nat.emplace(cfg);
  nodes_.emplace(id, std::move(state));
}

void Network::detach(NodeId id) {
  const auto erased = nodes_.erase(id);
  CROUPIER_ASSERT_MSG(erased == 1, "detach of unattached node");
  buckets_.erase(id);
}

void Network::reclassify(NodeId id, const NatConfig& cfg) {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT_MSG(it != nodes_.end(), "reclassify of unattached node");
  it->second.cfg = cfg;
  it->second.nat.reset();
  if (!cfg.behaves_public()) it->second.nat.emplace(cfg);
  it->second.assemblies.clear();
  buckets_.erase(id);
}

NatType Network::type_of(NodeId id) const {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT(it != nodes_.end());
  return it->second.cfg.nat_type();
}

const NatBox* Network::nat_of(NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.nat.has_value()) return nullptr;
  return &*it->second.nat;
}

IpAddr Network::local_ip(NodeId id) const {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT(it != nodes_.end());
  switch (it->second.cfg.cls) {
    case ConnectivityClass::Natted:
    case ConnectivityClass::UpnpIgd:
      // RFC1918-style address behind the gateway.
      return IpAddr{0x0a000000u | (id & 0x00ffffffu)};
    case ConnectivityClass::OpenInternet:
    case ConnectivityClass::Firewalled:
      return public_ip(id);
  }
  return {};
}

IpAddr Network::public_ip(NodeId id) const {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT(it != nodes_.end());
  // Deterministic distinct "public" address per node (each private node is
  // modelled behind its own gateway).
  return IpAddr{0x52000000u | (id & 0x00ffffffu)};
}

std::size_t Network::pending_reassemblies(NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.assemblies.size();
}

void Network::send(NodeId from, NodeId to, MessagePtr msg) {
  CROUPIER_ASSERT(msg != nullptr);
  const auto from_it = nodes_.find(from);
  CROUPIER_ASSERT_MSG(from_it != nodes_.end(), "sender not attached");

  // Serialization cost is charged here so it runs on the worker when the
  // parallel engine is active.
  const std::size_t wire_bytes = msg->wire_size();

  // The sender's own gateway opens/refreshes a mapping toward `to`
  // regardless of whether the packet ultimately arrives. The box belongs
  // to the node this event is sharded on, so the mutation stays inline.
  if (from_it->second.nat.has_value()) {
    sim::conflict::record_write(from, "Network: sender NAT box");
    from_it->second.nat->on_outbound(simulator_.now(), to);
  }

  if (fragmenter_.needs_fragmentation(wire_bytes)) {
    // Encode and split on the worker (pure sender-local work); the
    // msg_id is stamped by the serial half.
    wire::Writer w;
    msg->encode(w);
    const std::vector<std::byte> buf = std::move(w).take();
    CROUPIER_ASSERT_MSG(buf.size() == wire_bytes,
                        "wire_size() disagrees with encode()");
    auto frags = fragmenter_.split(0, buf);
    if (!simulator_.deferring()) {
      finish_send_fragments(from, to, std::move(msg), std::move(frags));
      return;
    }
    simulator_.defer([this, from, to, msg = std::move(msg),
                      frags = std::move(frags)]() mutable {
      finish_send_fragments(from, to, std::move(msg), std::move(frags));
    });
    return;
  }

  const std::size_t bytes = wire_bytes + kUdpIpHeaderBytes;
  if (!simulator_.deferring()) {
    // Sequential engine (or serial-affinity event): no closure, no
    // allocation — the pre-parallel-engine hot path unchanged.
    finish_send(from, to, std::move(msg), bytes);
    return;
  }
  simulator_.defer([this, from, to, msg = std::move(msg), bytes]() mutable {
    finish_send(from, to, std::move(msg), bytes);
  });
}

NatType Network::class_or_public(NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? NatType::Public : it->second.cfg.nat_type();
}

double Network::loss_probability(NodeId from, NodeId to) const {
  if (loss_ == nullptr) return 0.0;
  // Class lookups are paid only for models that read them.
  return loss_class_sensitive_
             ? loss_->probability(simulator_.now(), class_or_public(from),
                                  class_or_public(to))
             : loss_->probability(simulator_.now(), NatType::Public,
                                  NatType::Public);
}

sim::Duration Network::bucket_delay(NodeId from, std::size_t bytes) {
  if (packet_.bandwidth_bps == 0) return 0;
  auto it = buckets_.find(from);
  if (it == buckets_.end()) {
    it = buckets_
             .emplace(from, TokenBucket(packet_.bandwidth_bps,
                                        packet_.burst_bytes()))
             .first;
  }
  return it->second.charge(simulator_.now(), bytes);
}

void Network::finish_send(NodeId from, NodeId to, MessagePtr msg,
                          std::size_t bytes) {
  meter_.on_send(from, bytes);
  const sim::Duration queue_delay = bucket_delay(from, bytes);

  // One die roll per packet with a positive drop probability — and none
  // otherwise, exactly the draw pattern of the historic uniform scalar,
  // so pre-LossModel runs replay byte-identically.
  const double p = loss_probability(from, to);
  if (p > 0.0 && rng_.chance(p)) {
    ++drops_.loss;
    drops_.loss_bytes += bytes;
    return;
  }

  const sim::Duration delay = queue_delay + latency_->sample(from, to, rng_);
  const sim::Affinity affinity =
      delivery_affinity_ ? delivery_affinity_(to, *msg) : sim::kSerialAffinity;
  simulator_.schedule_after(
      delay, affinity,
      [this, from, to, msg = std::move(msg), bytes]() mutable {
        deliver(from, to, std::move(msg), bytes);
      });
}

void Network::finish_send_fragments(NodeId from, NodeId to, MessagePtr msg,
                                    std::vector<Fragment> frags) {
  const std::uint64_t msg_id = next_msg_id_++;
  const double p = loss_probability(from, to);
  const sim::Affinity affinity =
      delivery_affinity_ ? delivery_affinity_(to, *msg) : sim::kSerialAffinity;
  for (auto& frag : frags) {
    frag.header.msg_id = msg_id;
    const std::size_t bytes = frag.wire_size() + kUdpIpHeaderBytes;
    meter_.on_send(from, bytes);
    ++drops_.fragments_sent;
    // The datagram leaves the sender's access link whether or not the
    // loss die downstream kills it, so the bucket is charged first.
    const sim::Duration queue_delay = bucket_delay(from, bytes);
    if (p > 0.0 && rng_.chance(p)) {
      ++drops_.loss;
      drops_.loss_bytes += bytes;
      ++drops_.fragments_lost;
      continue;
    }
    const sim::Duration delay =
        queue_delay + latency_->sample(from, to, rng_);
    simulator_.schedule_after(
        delay, affinity,
        [this, from, to, msg, frag = std::move(frag), bytes]() mutable {
          deliver_fragment(from, to, std::move(msg), std::move(frag), bytes);
        });
  }
}

void Network::deliver(NodeId from, NodeId to, MessagePtr msg,
                      std::size_t bytes) {
  const bool deferring = simulator_.deferring();
  const auto to_it = nodes_.find(to);
  if (to_it == nodes_.end()) {
    if (!deferring) {
      ++drops_.dead_receiver;
      drops_.dead_receiver_bytes += bytes;
    } else {
      simulator_.defer([this, bytes] {
        ++drops_.dead_receiver;
        drops_.dead_receiver_bytes += bytes;
      });
    }
    return;
  }
  if (to_it->second.nat.has_value() &&
      !to_it->second.nat->allows_inbound(simulator_.now(), from)) {
    if (!deferring) {
      ++drops_.nat_filtered;
      drops_.nat_filtered_bytes += bytes;
    } else {
      simulator_.defer([this, bytes] {
        ++drops_.nat_filtered;
        drops_.nat_filtered_bytes += bytes;
      });
    }
    return;
  }
  if (!deferring) {
    ++drops_.delivered;
    drops_.delivered_bytes += bytes;
    meter_.on_deliver(to, bytes);
  } else {
    simulator_.defer([this, to, bytes] {
      ++drops_.delivered;
      drops_.delivered_bytes += bytes;
      meter_.on_deliver(to, bytes);
    });
  }
  sim::conflict::record_write(to, "Network: receiver handler dispatch");
  to_it->second.handler->on_message(from, *msg);
}

void Network::deliver_fragment(NodeId from, NodeId to, MessagePtr msg,
                               Fragment frag, std::size_t bytes) {
  const bool deferring = simulator_.deferring();
  const auto to_it = nodes_.find(to);
  if (to_it == nodes_.end()) {
    if (!deferring) {
      ++drops_.dead_receiver;
      drops_.dead_receiver_bytes += bytes;
      ++drops_.fragments_lost;
    } else {
      simulator_.defer([this, bytes] {
        ++drops_.dead_receiver;
        drops_.dead_receiver_bytes += bytes;
        ++drops_.fragments_lost;
      });
    }
    return;
  }
  if (to_it->second.nat.has_value() &&
      !to_it->second.nat->allows_inbound(simulator_.now(), from)) {
    if (!deferring) {
      ++drops_.nat_filtered;
      drops_.nat_filtered_bytes += bytes;
      ++drops_.fragments_lost;
    } else {
      simulator_.defer([this, bytes] {
        ++drops_.nat_filtered;
        drops_.nat_filtered_bytes += bytes;
        ++drops_.fragments_lost;
      });
    }
    return;
  }
  if (!deferring) {
    drops_.delivered_bytes += bytes;
    meter_.on_deliver(to, bytes);
  } else {
    simulator_.defer([this, to, bytes] {
      drops_.delivered_bytes += bytes;
      meter_.on_deliver(to, bytes);
    });
  }

  // Reassembly buffers are the receiving node's own state (this event is
  // sharded on `to`, like the NAT box above), so the mutation is inline.
  sim::conflict::record_write(to, "Network: reassembly buffers");
  auto& assemblies = to_it->second.assemblies;
  auto it = assemblies.find(frag.header.msg_id);
  if (it == assemblies.end()) {
    it = assemblies
             .emplace(frag.header.msg_id,
                      Assembly{FragmentAssembly(frag.header), msg})
             .first;
    // One GC event per entry, armed at first-fragment arrival. Never
    // cancelled (cancel() is off-limits inside parallel batches): if the
    // message completes first, the entry sits inert — suppressing late
    // duplicates — until the timeout sweeps it.
    const std::uint64_t msg_id = frag.header.msg_id;
    const sim::Affinity affinity = delivery_affinity_
                                       ? delivery_affinity_(to, *msg)
                                       : sim::kSerialAffinity;
    // detlint:allow(naked-schedule) the GC arm discards the EventId and
    // is deliberately un-guarded: schedule_impl auto-defers it when this
    // delivery runs inside a parallel batch, and the event is harmless
    // to replay late (expire_assembly tolerates a completed entry).
    simulator_.schedule_after(
        packet_.reassembly_timeout, affinity,
        [this, to, msg_id] { expire_assembly(to, msg_id); });
  }
  if (it->second.frags.add(frag.header, frag.payload)) {
    // This fragment completed the message: reconstruct the bytes (the
    // honest path — repair fragments really decode) and deliver the
    // carried message.
    const auto reassembled = it->second.frags.bytes();
    CROUPIER_ASSERT_MSG(reassembled.has_value() &&
                            reassembled->size() == frag.header.total_len,
                        "reassembly yielded the wrong byte count");
    const auto held =
        static_cast<std::uint64_t>(it->second.frags.fragments_held());
    if (!deferring) {
      ++drops_.delivered;
      drops_.fragments_reassembled += held;
    } else {
      simulator_.defer([this, held] {
        ++drops_.delivered;
        drops_.fragments_reassembled += held;
      });
    }
    to_it->second.handler->on_message(from, *it->second.msg);
  }
}

void Network::expire_assembly(NodeId to, std::uint64_t msg_id) {
  const auto to_it = nodes_.find(to);
  if (to_it == nodes_.end()) return;  // node died; state already gone
  auto& assemblies = to_it->second.assemblies;
  const auto it = assemblies.find(msg_id);
  if (it == assemblies.end()) return;
  if (!it->second.frags.complete()) {
    const auto held =
        static_cast<std::uint64_t>(it->second.frags.fragments_held());
    if (!simulator_.deferring()) {
      drops_.fragments_expired += held;
    } else {
      simulator_.defer([this, held] { drops_.fragments_expired += held; });
    }
  }
  assemblies.erase(it);
}

std::string to_string(IpAddr ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip.v >> 24) & 0xff,
                (ip.v >> 16) & 0xff, (ip.v >> 8) & 0xff, ip.v & 0xff);
  return buf;
}

}  // namespace croupier::net
