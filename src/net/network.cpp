#include "net/network.hpp"

#include <cstdio>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace croupier::net {

Network::Network(sim::Simulator& simulator,
                 std::unique_ptr<LatencyModel> latency, sim::RngStream rng,
                 std::unique_ptr<LossModel> loss)
    : simulator_(simulator),
      latency_(std::move(latency)),
      rng_(rng),
      loss_(std::move(loss)),
      loss_class_sensitive_(loss_ != nullptr && loss_->class_sensitive()) {
  CROUPIER_ASSERT(latency_ != nullptr);
}

Network::Network(sim::Simulator& simulator,
                 std::unique_ptr<LatencyModel> latency, sim::RngStream rng,
                 double loss_probability)
    : Network(simulator, std::move(latency), rng,
              make_loss_model(LossConfig::uniform(loss_probability))) {}

void Network::attach(NodeId id, const NatConfig& cfg,
                     MessageHandler& handler) {
  CROUPIER_ASSERT_MSG(!nodes_.contains(id), "NodeId already attached");
  NodeState state;
  state.cfg = cfg;
  state.handler = &handler;
  if (!cfg.behaves_public()) state.nat.emplace(cfg);
  nodes_.emplace(id, std::move(state));
}

void Network::detach(NodeId id) {
  const auto erased = nodes_.erase(id);
  CROUPIER_ASSERT_MSG(erased == 1, "detach of unattached node");
}

NatType Network::type_of(NodeId id) const {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT(it != nodes_.end());
  return it->second.cfg.nat_type();
}

const NatBox* Network::nat_of(NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.nat.has_value()) return nullptr;
  return &*it->second.nat;
}

IpAddr Network::local_ip(NodeId id) const {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT(it != nodes_.end());
  switch (it->second.cfg.cls) {
    case ConnectivityClass::Natted:
    case ConnectivityClass::UpnpIgd:
      // RFC1918-style address behind the gateway.
      return IpAddr{0x0a000000u | (id & 0x00ffffffu)};
    case ConnectivityClass::OpenInternet:
    case ConnectivityClass::Firewalled:
      return public_ip(id);
  }
  return {};
}

IpAddr Network::public_ip(NodeId id) const {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT(it != nodes_.end());
  // Deterministic distinct "public" address per node (each private node is
  // modelled behind its own gateway).
  return IpAddr{0x52000000u | (id & 0x00ffffffu)};
}

void Network::send(NodeId from, NodeId to, MessagePtr msg) {
  CROUPIER_ASSERT(msg != nullptr);
  const auto from_it = nodes_.find(from);
  CROUPIER_ASSERT_MSG(from_it != nodes_.end(), "sender not attached");

  // Serialization cost is charged here so it runs on the worker when the
  // parallel engine is active.
  const std::size_t bytes = msg->wire_size() + kUdpIpHeaderBytes;

  // The sender's own gateway opens/refreshes a mapping toward `to`
  // regardless of whether the packet ultimately arrives. The box belongs
  // to the node this event is sharded on, so the mutation stays inline.
  if (from_it->second.nat.has_value()) {
    from_it->second.nat->on_outbound(simulator_.now(), to);
  }

  if (!simulator_.deferring()) {
    // Sequential engine (or serial-affinity event): no closure, no
    // allocation — the pre-parallel-engine hot path unchanged.
    finish_send(from, to, std::move(msg), bytes);
    return;
  }
  simulator_.defer([this, from, to, msg = std::move(msg), bytes]() mutable {
    finish_send(from, to, std::move(msg), bytes);
  });
}

NatType Network::class_or_public(NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? NatType::Public : it->second.cfg.nat_type();
}

void Network::finish_send(NodeId from, NodeId to, MessagePtr msg,
                          std::size_t bytes) {
  meter_.on_send(from, bytes);

  // One die roll per packet with a positive drop probability — and none
  // otherwise, exactly the draw pattern of the historic uniform scalar,
  // so pre-LossModel runs replay byte-identically. Class lookups are
  // paid only for models that read them.
  if (loss_ != nullptr) {
    const double p =
        loss_class_sensitive_
            ? loss_->probability(simulator_.now(), class_or_public(from),
                                 class_or_public(to))
            : loss_->probability(simulator_.now(), NatType::Public,
                                 NatType::Public);
    if (p > 0.0 && rng_.chance(p)) {
      ++drops_.loss;
      return;
    }
  }

  const sim::Duration delay = latency_->sample(from, to, rng_);
  const sim::Affinity affinity =
      delivery_affinity_ ? delivery_affinity_(to, *msg) : sim::kSerialAffinity;
  simulator_.schedule_after(
      delay, affinity,
      [this, from, to, msg = std::move(msg), bytes]() mutable {
        deliver(from, to, std::move(msg), bytes);
      });
}

void Network::deliver(NodeId from, NodeId to, MessagePtr msg,
                      std::size_t bytes) {
  const bool deferring = simulator_.deferring();
  const auto to_it = nodes_.find(to);
  if (to_it == nodes_.end()) {
    if (!deferring) {
      ++drops_.dead_receiver;
    } else {
      simulator_.defer([this] { ++drops_.dead_receiver; });
    }
    return;
  }
  if (to_it->second.nat.has_value() &&
      !to_it->second.nat->allows_inbound(simulator_.now(), from)) {
    if (!deferring) {
      ++drops_.nat_filtered;
    } else {
      simulator_.defer([this] { ++drops_.nat_filtered; });
    }
    return;
  }
  if (!deferring) {
    ++drops_.delivered;
    meter_.on_deliver(to, bytes);
  } else {
    simulator_.defer([this, to, bytes] {
      ++drops_.delivered;
      meter_.on_deliver(to, bytes);
    });
  }
  to_it->second.handler->on_message(from, *msg);
}

std::string to_string(IpAddr ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip.v >> 24) & 0xff,
                (ip.v >> 16) & 0xff, (ip.v >> 8) & 0xff, ip.v & 0xff);
  return buf;
}

}  // namespace croupier::net
