// Anchor translation unit: verifies net/traffic.hpp compiles standalone.
#include "net/traffic.hpp"
