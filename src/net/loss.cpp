#include "net/loss.hpp"

#include "common/assert.hpp"

namespace croupier::net {

namespace {

void check_rates(const LossConfig& cfg) {
  for (const auto& row : cfg.rate) {
    for (const double p : row) {
      CROUPIER_ASSERT_MSG(p >= 0.0 && p < 1.0,
                          "loss rate must be in [0, 1)");
    }
  }
}

}  // namespace

UniformLoss::UniformLoss(double probability) : probability_(probability) {
  CROUPIER_ASSERT_MSG(probability_ >= 0.0 && probability_ < 1.0,
                      "loss rate must be in [0, 1)");
}

ClassPairLoss::ClassPairLoss(const LossConfig& cfg) : cfg_(cfg) {
  check_rates(cfg_);
}

std::unique_ptr<LossModel> make_loss_model(const LossConfig& cfg) {
  check_rates(cfg);
  if (cfg.lossless()) return nullptr;
  if (cfg.is_uniform()) return std::make_unique<UniformLoss>(cfg.rate[0][0]);
  return std::make_unique<ClassPairLoss>(cfg);
}

}  // namespace croupier::net
