#include "net/packet.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace croupier::net {

void FragmentHeader::encode(wire::Writer& w) const {
  w.u64(msg_id);
  w.u16(index);
  w.u16(count);
  w.u16(source);
  w.u16(payload_len);
  w.u32(total_len);
}

FragmentHeader FragmentHeader::decode(wire::Reader& r) {
  FragmentHeader h;
  h.msg_id = r.u64();
  h.index = r.u16();
  h.count = r.u16();
  h.source = r.u16();
  h.payload_len = r.u16();
  h.total_len = r.u32();
  return h;
}

Fragmenter::Fragmenter(const PacketConfig& cfg) : cfg_(cfg) {
  if (cfg_.mtu > 0) {
    CROUPIER_ASSERT_MSG(cfg_.mtu > kFragmentHeaderBytes,
                        "mtu must exceed the fragment header");
    CROUPIER_ASSERT(cfg_.mtu <= kMaxMtu);
  }
}

std::size_t Fragmenter::source_count(std::size_t message_bytes) const {
  CROUPIER_ASSERT(needs_fragmentation(message_bytes));
  const std::size_t chunk_cap = cfg_.mtu - kFragmentHeaderBytes;
  return (message_bytes + chunk_cap - 1) / chunk_cap;
}

std::size_t Fragmenter::repair_count(std::size_t k) const {
  if (!cfg_.fec_active()) return 0;
  if (k >= fec::kMaxCodedFragments) return 0;  // plain-fragmentation fallback
  std::size_t r = cfg_.fec_repair;
  if (cfg_.fec_rate > 0.0) {
    r += static_cast<std::size_t>(
        std::ceil(cfg_.fec_rate * static_cast<double>(k)));
  }
  return std::min(r, fec::kMaxCodedFragments - k);
}

std::vector<Fragment> Fragmenter::split(
    std::uint64_t msg_id, std::span<const std::byte> message) const {
  CROUPIER_ASSERT(needs_fragmentation(message.size()));
  const std::size_t k = source_count(message.size());
  const std::size_t r = repair_count(k);
  // Equal-size chunks (tail zero-padded logically) so repair rows line
  // up; chunk_len <= mtu - header holds because k is the ceiling split.
  const std::size_t chunk_len = (message.size() + k - 1) / k;
  CROUPIER_ASSERT(chunk_len <= cfg_.mtu - kFragmentHeaderBytes);
  CROUPIER_ASSERT_MSG(k + r <= 0xffff, "message too large for u16 fragment "
                                       "count at this mtu");

  std::vector<Fragment> out;
  out.reserve(k + r);
  FragmentHeader h;
  h.msg_id = msg_id;
  h.count = static_cast<std::uint16_t>(k + r);
  h.source = static_cast<std::uint16_t>(k);
  h.total_len = static_cast<std::uint32_t>(message.size());
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t begin = i * chunk_len;
    const std::size_t len = std::min(chunk_len, message.size() - begin);
    h.index = static_cast<std::uint16_t>(i);
    h.payload_len = static_cast<std::uint16_t>(len);
    out.push_back(Fragment{
        h, std::vector<std::byte>(message.begin() +
                                      static_cast<std::ptrdiff_t>(begin),
                                  message.begin() +
                                      static_cast<std::ptrdiff_t>(begin +
                                                                  len))});
  }
  for (std::size_t j = 0; j < r; ++j) {
    h.index = static_cast<std::uint16_t>(k + j);
    h.payload_len = static_cast<std::uint16_t>(chunk_len);
    out.push_back(
        Fragment{h, fec::encode_repair(message, k, chunk_len, j)});
  }
  return out;
}

FragmentAssembly::FragmentAssembly(const FragmentHeader& first)
    : geometry_(first),
      chunk_len_((first.total_len + first.source - 1) / first.source) {
  CROUPIER_ASSERT(first.source >= 1 && first.count >= first.source);
  CROUPIER_ASSERT(first.total_len >= 1);
  have_.assign(first.count, false);
  if (first.count > first.source) {
    // Coded message: repair fragments can substitute for any source, so
    // rows go through the GF(256) decoder (sender guarantees the Cauchy
    // bound for coded messages).
    decoder_.emplace(first.source, chunk_len_);
  } else {
    buffer_.assign(first.total_len, std::byte{0});
  }
}

bool FragmentAssembly::add(const FragmentHeader& h,
                           std::span<const std::byte> payload) {
  if (h.msg_id != geometry_.msg_id || h.count != geometry_.count ||
      h.source != geometry_.source || h.total_len != geometry_.total_len ||
      h.index >= h.count || payload.size() != h.payload_len ||
      payload.size() > chunk_len_) {
    return false;  // corrupt or mismatched frame: ignore
  }
  if (complete() || have_[h.index]) return false;
  have_[h.index] = true;
  if (decoder_.has_value()) {
    decoder_->add(h.index, payload);
  } else {
    // Plain fragmentation: chunk h.index lands at a fixed offset.
    const std::size_t begin = static_cast<std::size_t>(h.index) * chunk_len_;
    CROUPIER_ASSERT(begin + payload.size() <= buffer_.size());
    std::copy(payload.begin(), payload.end(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(begin));
  }
  ++held_;
  return complete();
}

std::optional<std::vector<std::byte>> FragmentAssembly::bytes() const {
  if (!complete()) return std::nullopt;
  if (!decoder_.has_value()) return buffer_;
  auto padded = decoder_->decode();
  if (!padded.has_value()) return std::nullopt;
  padded->resize(geometry_.total_len);  // trim the zero-padded tail chunk
  return padded;
}

}  // namespace croupier::net
