// Bootstrap oracle.
//
// Real deployments of the paper's protocols rely on a bootstrap server
// that hands joining nodes the addresses of a few public nodes (paper §V:
// "a number of public nodes returned by a bootstrap server"). In the
// simulation this is an oracle object, not a simulated node: it keeps a
// registry of currently-alive nodes and samples from it. Only its
// *public-node* sampling is used by the protocols, mirroring the paper.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "sim/rng.hpp"

namespace croupier::net {

class BootstrapServer {
 public:
  void add(NodeId id, NatType type);
  void remove(NodeId id);

  /// Up to n distinct public nodes, uniformly at random, excluding `self`.
  [[nodiscard]] std::vector<NodeId> sample_public(std::size_t n, NodeId self,
                                                  sim::RngStream& rng) const;

  /// Up to n distinct nodes of any type, uniformly at random, excluding
  /// `self`. (Used by baselines whose original papers bootstrap from the
  /// full membership.)
  [[nodiscard]] std::vector<NodeId> sample_any(std::size_t n, NodeId self,
                                               sim::RngStream& rng) const;

  [[nodiscard]] std::size_t public_count() const { return publics_.size(); }
  [[nodiscard]] std::size_t total_count() const { return all_.size(); }
  [[nodiscard]] bool known(NodeId id) const { return index_all_.contains(id); }

 private:
  static std::vector<NodeId> sample_from(const std::vector<NodeId>& pool,
                                         std::size_t n, NodeId self,
                                         sim::RngStream& rng);
  // Registries support O(1) add/remove via swap-with-last.
  std::vector<NodeId> publics_;
  std::unordered_map<NodeId, std::size_t> index_public_;
  std::vector<NodeId> all_;
  std::unordered_map<NodeId, std::size_t> index_all_;
};

}  // namespace croupier::net
