// Pluggable message-loss models.
//
// The paper's evaluation uses uniform loss ("messages are dropped with
// probability p"); the estimator's third assumption is precisely that the
// loss shows *no bias* between public and private nodes. To measure what
// happens when that assumption breaks, loss is a model, not a scalar: the
// Network asks its LossModel for the drop probability of each packet,
// given the sender/receiver NAT classes and the current virtual time.
//
// Determinism contract: probability() must be a pure function of its
// arguments (no internal RNG, no mutable state) — the Network owns the
// single loss die and rolls it exactly once per packet whose probability
// is positive, which is what keeps runs byte-identical across the
// sequential and round-synchronous parallel engines.
#pragma once

#include <array>
#include <memory>

#include "net/nat.hpp"
#include "sim/time.hpp"

namespace croupier::net {

/// Declarative loss conditions: one drop rate per (sender class,
/// receiver class) pair, optionally activating only after a point in
/// virtual time (loss is zero before `after`). rate[0][*] is a public
/// sender, rate[*][0] a public receiver; index 1 is private. All rates
/// must lie in [0, 1) — a rate of 1 would silence a class pair entirely
/// and is rejected up front (same contract the Network always had for
/// its uniform scalar).
struct LossConfig {
  std::array<std::array<double, 2>, 2> rate{{{0.0, 0.0}, {0.0, 0.0}}};
  sim::SimTime after = 0;

  /// Uniform loss probability p from t=0 (the historic scalar).
  static LossConfig uniform(double p) {
    LossConfig cfg;
    cfg.rate = {{{p, p}, {p, p}}};
    return cfg;
  }

  [[nodiscard]] double rate_for(NatType from, NatType to) const {
    const auto i = [](NatType t) { return t == NatType::Public ? 0 : 1; };
    return rate[i(from)][i(to)];
  }

  /// True when every class pair shares one rate (the matrix carries no
  /// class structure; it may still be time-varying via `after`).
  [[nodiscard]] bool flat() const {
    return rate[0][0] == rate[0][1] && rate[0][0] == rate[1][0] &&
           rate[0][0] == rate[1][1];
  }

  /// True when no packet can ever be dropped (all rates zero).
  [[nodiscard]] bool lossless() const { return flat() && rate[0][0] == 0.0; }

  /// True when every class pair shares one rate and the loss is active
  /// from t=0 — the case that must behave exactly like the historic
  /// uniform scalar.
  [[nodiscard]] bool is_uniform() const { return after == 0 && flat(); }
};

/// Drop-probability oracle for one packet. See file comment for the
/// purity requirement.
class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Probability in [0, 1) that a packet sent now from a node of class
  /// `from` to a node of class `to` is dropped.
  [[nodiscard]] virtual double probability(sim::SimTime now, NatType from,
                                           NatType to) const = 0;

  /// False when probability() ignores the class arguments entirely —
  /// the Network then skips the per-packet class lookups on the send
  /// hot path (the pre-LossModel uniform scalar never paid them).
  [[nodiscard]] virtual bool class_sensitive() const { return true; }
};

/// The paper's model: every packet drops with one fixed probability.
class UniformLoss final : public LossModel {
 public:
  explicit UniformLoss(double probability);
  [[nodiscard]] double probability(sim::SimTime, NatType,
                                   NatType) const override {
    return probability_;
  }
  [[nodiscard]] bool class_sensitive() const override { return false; }

 private:
  double probability_;
};

/// Per-class-pair, time-varying loss (see LossConfig). Before `after`
/// the network is loss-free; from `after` on, each packet drops with its
/// class pair's rate.
class ClassPairLoss final : public LossModel {
 public:
  explicit ClassPairLoss(const LossConfig& cfg);
  [[nodiscard]] double probability(sim::SimTime now, NatType from,
                                   NatType to) const override {
    return now >= cfg_.after ? cfg_.rate_for(from, to) : 0.0;
  }
  /// A delayed-but-flat matrix is time-sensitive yet class-blind.
  [[nodiscard]] bool class_sensitive() const override {
    return !cfg_.flat();
  }

 private:
  LossConfig cfg_;
};

/// Builds the cheapest model expressing `cfg`: nullptr when lossless
/// (the Network skips the loss die entirely — the historic loss=0 hot
/// path), UniformLoss for a flat always-on rate, ClassPairLoss
/// otherwise. Asserts every rate is in [0, 1).
std::unique_ptr<LossModel> make_loss_model(const LossConfig& cfg);

}  // namespace croupier::net
