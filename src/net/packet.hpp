// Packet layer: MTU fragmentation framing and receiver-side reassembly.
//
// With `mtu=0` (the default) the layer is off and the Network treats a
// message as one indivisible datagram — the historic model, byte
// identical to every pre-packet run. With a positive MTU, a message
// whose wire size exceeds it is split into k = ceil(size / (mtu -
// header)) framed fragments, each riding its own datagram: its own loss
// die, its own latency sample, its own byte charge. Optionally
// (PacketConfig::fec_*) the sender appends rateless repair fragments
// (fec/rateless) so the receiver can reconstruct from any k of the
// k + r sent.
//
// Fragment frame (kFragmentHeaderBytes = 20, big-endian, on top of each
// datagram payload):
//
//   u64 msg_id       globally unique per fragmented message
//   u16 index        0..count-1; >= source means repair fragment
//   u16 count        fragments sent for this message (k + repairs)
//   u16 source       k, the source-chunk count
//   u16 payload_len  bytes of chunk data following this header
//   u32 total_len    original message wire size
//
// Reassembly (FragmentAssembly) completes on any k distinct fragments;
// the Network garbage-collects incomplete entries after a deterministic
// timeout so lossy links cannot grow receiver state without bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fec/rateless.hpp"
#include "sim/time.hpp"
#include "wire/wire.hpp"

namespace croupier::net {

/// Fixed per-fragment frame overhead (see layout above).
constexpr std::size_t kFragmentHeaderBytes = 20;

/// Largest meaningful MTU: the UDP payload limit over IPv4.
constexpr std::size_t kMaxMtu = 65507;

struct PacketConfig {
  /// Max UDP payload bytes per datagram; 0 = packet layer off (whole
  /// messages ride single datagrams, the historic byte-identical model).
  std::size_t mtu = 0;
  /// Per-node token-bucket rate in bytes/second; 0 = uncapped.
  std::uint64_t bandwidth_bps = 0;
  /// Bucket depth in bytes; 0 = one second of tokens (== rate).
  std::uint64_t bandwidth_burst = 0;
  /// Fixed repair fragments appended per fragmented message.
  std::uint32_t fec_repair = 0;
  /// Proportional repair: ceil(fec_rate * k) extra repair fragments.
  double fec_rate = 0.0;
  /// Incomplete reassembly entries are dropped this long after their
  /// first fragment arrives.
  sim::Duration reassembly_timeout = sim::sec(3);

  /// True when any packet machinery (fragmentation or bandwidth
  /// metering) is on; false = the pre-packet Network::send path.
  [[nodiscard]] bool active() const { return mtu > 0 || bandwidth_bps > 0; }
  [[nodiscard]] bool fec_active() const {
    return mtu > 0 && (fec_repair > 0 || fec_rate > 0.0);
  }
  [[nodiscard]] std::uint64_t burst_bytes() const {
    return bandwidth_burst > 0 ? bandwidth_burst : bandwidth_bps;
  }
};

struct FragmentHeader {
  std::uint64_t msg_id = 0;
  std::uint16_t index = 0;
  std::uint16_t count = 0;
  std::uint16_t source = 0;
  std::uint16_t payload_len = 0;
  std::uint32_t total_len = 0;

  void encode(wire::Writer& w) const;
  /// Zeroed header with r.ok() == false on truncated input (the Reader
  /// latches; callers check once).
  static FragmentHeader decode(wire::Reader& r);

  friend bool operator==(const FragmentHeader&,
                         const FragmentHeader&) = default;
};

struct Fragment {
  FragmentHeader header;
  std::vector<std::byte> payload;

  /// Bytes this fragment occupies on the wire (frame + chunk), before
  /// the UDP/IP headers the Network charges per datagram.
  [[nodiscard]] std::size_t wire_size() const {
    return kFragmentHeaderBytes + payload.size();
  }
};

/// Splits encoded messages into framed fragments per a PacketConfig.
class Fragmenter {
 public:
  explicit Fragmenter(const PacketConfig& cfg);

  /// True when a message of this wire size must be split (mtu on and
  /// exceeded). Smaller messages ride one classic datagram, frame-free.
  [[nodiscard]] bool needs_fragmentation(std::size_t message_bytes) const {
    return cfg_.mtu > 0 && message_bytes > cfg_.mtu;
  }

  /// Source fragment count k = ceil(size / (mtu - header)).
  [[nodiscard]] std::size_t source_count(std::size_t message_bytes) const;

  /// Repair fragments for a k-chunk message: fec_repair + ceil(fec_rate
  /// * k), clamped so k + r fits the Cauchy construction (and 0 when k
  /// alone already exceeds it — plain fragmentation fallback).
  [[nodiscard]] std::size_t repair_count(std::size_t k) const;

  /// Splits `message` into source + repair fragments stamped with
  /// msg_id. Requires needs_fragmentation(message.size()).
  [[nodiscard]] std::vector<Fragment> split(
      std::uint64_t msg_id, std::span<const std::byte> message) const;

 private:
  PacketConfig cfg_;
};

/// Receiver-side accumulator for one fragmented message.
class FragmentAssembly {
 public:
  /// Geometry is taken from the first fragment seen (fragments of one
  /// msg_id always agree in-sim; mismatching ones are ignored).
  explicit FragmentAssembly(const FragmentHeader& first);

  /// Feeds one fragment. Duplicates and geometry mismatches are
  /// ignored. Returns true when this fragment completed the message.
  bool add(const FragmentHeader& h, std::span<const std::byte> payload);

  [[nodiscard]] bool complete() const { return held_ == geometry_.source; }
  [[nodiscard]] std::size_t fragments_held() const { return held_; }

  /// The reassembled message (total_len bytes), FEC-decoded when repair
  /// fragments participated; nullopt while incomplete.
  [[nodiscard]] std::optional<std::vector<std::byte>> bytes() const;

 private:
  FragmentHeader geometry_;
  std::size_t chunk_len_;
  std::size_t held_ = 0;
  std::vector<bool> have_;  // per fragment index, duplicate suppression
  /// Plain messages (count == source) assemble chunks in place; coded
  /// ones (repair fragments present) go through the GF(256) decoder.
  std::vector<std::byte> buffer_;
  std::optional<fec::Decoder> decoder_;
};

}  // namespace croupier::net
