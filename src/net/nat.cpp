#include "net/nat.hpp"

#include <vector>

namespace croupier::net {

void NatBox::on_outbound(sim::SimTime now, NodeId dst) {
  last_outbound_[dst] = now;
  last_any_outbound_ = now;
  any_outbound_ever_ = true;
  if (++ops_since_gc_ >= 256) maybe_collect(now);
}

bool NatBox::allows_inbound(sim::SimTime now, NodeId src) const {
  if (cfg_.behaves_public()) return true;
  switch (cfg_.filtering) {
    case FilteringPolicy::EndpointIndependent:
      // The socket's single mapping is held open by *any* outbound
      // traffic; once live, any remote endpoint passes the filter.
      return any_outbound_ever_ && entry_live(now, last_any_outbound_);
    case FilteringPolicy::AddressDependent:
    case FilteringPolicy::AddressAndPortDependent: {
      const auto it = last_outbound_.find(src);
      return it != last_outbound_.end() && entry_live(now, it->second);
    }
  }
  return false;
}

std::size_t NatBox::live_entries(sim::SimTime now) const {
  std::size_t n = 0;
  // detlint:allow(unordered-iter) order-insensitive count — every visit
  // order yields the same n.
  for (const auto& [id, t] : last_outbound_) {
    if (entry_live(now, t)) ++n;
  }
  return n;
}

void NatBox::maybe_collect(sim::SimTime now) {
  ops_since_gc_ = 0;
  std::vector<NodeId> dead;
  dead.reserve(last_outbound_.size());
  // detlint:allow(unordered-iter) collects a set then erases it — the
  // resulting table state is independent of visit order.
  for (const auto& [id, t] : last_outbound_) {
    if (!entry_live(now, t)) dead.push_back(id);
  }
  for (NodeId id : dead) last_outbound_.erase(id);
}

}  // namespace croupier::net
