// Node identity and addressing for the simulated network.
//
// Nodes are identified by a NodeId that is unique for the lifetime of a
// simulation (ids are never reused across churn). Each node additionally
// has IPv4-style addresses: a local address, and the public address under
// which the rest of the network sees it (equal to the local address for
// open-Internet nodes; the NAT gateway's address for NATted ones). The
// distinction matters to the NAT-type identification protocol (paper §V),
// which compares the two.
#pragma once

#include <cstdint>
#include <string>

namespace croupier::net {

using NodeId = std::uint32_t;

/// Sentinel for "no node".
constexpr NodeId kNilNode = 0xffffffffu;

/// IPv4 address, host byte order.
struct IpAddr {
  std::uint32_t v = 0;

  // Defaulted comparison is a C++20 feature (C++17 rejects it); the build
  // pins cxx_std_20 in src/CMakeLists.txt — do not downgrade the standard.
  friend bool operator==(const IpAddr&, const IpAddr&) = default;
};

/// Renders dotted-quad for diagnostics ("10.0.3.7").
std::string to_string(IpAddr ip);

/// The binary NAT classification the paper's protocols operate on.
/// (The richer ground-truth configuration lives in net/nat.hpp.)
enum class NatType : std::uint8_t {
  Public = 0,   // directly reachable: open Internet or UPnP-mapped
  Private = 1,  // behind a NAT/firewall; reachable only after outbound
};

inline const char* to_cstring(NatType t) {
  return t == NatType::Public ? "public" : "private";
}

}  // namespace croupier::net
