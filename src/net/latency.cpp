#include "net/latency.hpp"

#include <algorithm>
#include <cmath>

namespace croupier::net {

sim::Duration UniformLatency::sample(NodeId, NodeId, sim::RngStream& rng) {
  return static_cast<sim::Duration>(
      rng.uniform_in(static_cast<std::int64_t>(lo_),
                     static_cast<std::int64_t>(hi_)));
}

KingLatencyModel::KingLatencyModel(std::uint64_t seed, Params params)
    : seed_(seed), params_(params) {}

CoordinateLatencyModel::CoordinateLatencyModel(std::uint64_t seed)
    : seed_(seed) {}

CoordinateLatencyModel::CoordinateLatencyModel(std::uint64_t seed,
                                               const Params& params)
    : seed_(seed), params_(params) {}

std::pair<double, double> CoordinateLatencyModel::position(
    NodeId node) const {
  // Three "continents" at fixed plane positions; each node hashes to one
  // and scatters around its centre with a Gaussian.
  static constexpr std::pair<double, double> kCentres[3] = {
      {0.2, 0.3}, {0.7, 0.25}, {0.55, 0.8}};
  std::uint64_t h = seed_ ^ (0x9e3779b97f4a7c15ULL * (node + 1));
  const std::uint64_t a = croupier::sim::splitmix64(h);
  const std::uint64_t b = croupier::sim::splitmix64(h);
  const auto& centre = kCentres[a % 3];
  const double u1 =
      (static_cast<double>(a >> 11) + 0.5) * 0x1.0p-53;
  const double u2 =
      (static_cast<double>(b >> 11) + 0.5) * 0x1.0p-53;
  const double radius =
      params_.cluster_stddev * std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.141592653589793 * u2;
  const double x = std::clamp(centre.first + radius * std::cos(angle), 0.0, 1.0);
  const double y = std::clamp(centre.second + radius * std::sin(angle), 0.0, 1.0);
  return {x, y};
}

sim::Duration CoordinateLatencyModel::base_latency(NodeId a, NodeId b) const {
  if (a == b) return params_.min_latency;
  const auto [ax, ay] = position(a);
  const auto [bx, by] = position(b);
  const double dist =
      std::sqrt((ax - bx) * (ax - bx) + (ay - by) * (ay - by));
  const double diagonal = std::sqrt(2.0);
  const double ms =
      params_.last_mile_ms + params_.plane_ms * dist / diagonal;
  const auto raw = static_cast<sim::Duration>(ms * 1000.0);
  return std::max(raw, params_.min_latency);
}

sim::Duration CoordinateLatencyModel::sample(NodeId from, NodeId to,
                                             sim::RngStream& rng) {
  const sim::Duration base = base_latency(from, to);
  if (params_.jitter_fraction <= 0.0) return base;
  const double jitter =
      1.0 + params_.jitter_fraction * (2.0 * rng.next_double() - 1.0);
  const auto jittered =
      static_cast<sim::Duration>(static_cast<double>(base) * jitter);
  return std::max(jittered, params_.min_latency);
}

namespace {

// Deterministic per-pair 64-bit hash (order independent).
std::uint64_t pair_hash(std::uint64_t seed, NodeId a, NodeId b) {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  std::uint64_t x =
      seed ^ (static_cast<std::uint64_t>(hi) << 32 | static_cast<std::uint64_t>(lo));
  return croupier::sim::splitmix64(x);
}

}  // namespace

sim::Duration KingLatencyModel::base_latency(NodeId a, NodeId b) const {
  if (a == b) return params_.min_latency;
  std::uint64_t h = pair_hash(seed_, a, b);
  // Two deterministic uniforms -> one standard normal via Box-Muller.
  std::uint64_t s = h;
  const double u1 =
      (static_cast<double>(croupier::sim::splitmix64(s) >> 11) + 0.5) *
      0x1.0p-53;
  const double u2 =
      (static_cast<double>(croupier::sim::splitmix64(s) >> 11) + 0.5) *
      0x1.0p-53;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
  const double ms = params_.median_ms * std::exp(params_.sigma * z);
  const auto raw = static_cast<sim::Duration>(ms * 1000.0);  // ms -> us
  return std::clamp(raw, params_.min_latency, params_.max_latency);
}

sim::Duration KingLatencyModel::sample(NodeId from, NodeId to,
                                       sim::RngStream& rng) {
  const sim::Duration base = base_latency(from, to);
  if (params_.jitter_fraction <= 0.0) return base;
  const double jitter =
      1.0 + params_.jitter_fraction * (2.0 * rng.next_double() - 1.0);
  const auto jittered =
      static_cast<sim::Duration>(static_cast<double>(base) * jitter);
  return std::clamp(jittered, params_.min_latency, params_.max_latency);
}

}  // namespace croupier::net
