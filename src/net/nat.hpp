// Ground-truth NAT/firewall model (the paper's substitute for real NAT
// gateways).
//
// Each node has a ConnectivityClass. Open-Internet and UPnP-IGD nodes
// behave as *public*: anybody may send to them. Natted and Firewalled
// nodes behave as *private*: an inbound packet is delivered only if the
// node's gateway currently holds a mapping/filter entry admitting the
// sender. Entries are created and refreshed by the node's own outbound
// packets and expire after `mapping_timeout` (default 30 s, comfortably
// above the 5-minute conservative bound the NAT-ID protocol assumes is
// *not* exceeded between unrelated hosts).
//
// Filtering policies follow NATCracker [20] terminology:
//  - EndpointIndependent: once any mapping is live, any host may send in;
//  - AddressDependent / AddressAndPortDependent: only hosts this node
//    recently sent to may send in. (The simulation gives each node one
//    port, so the two address-dependent flavours coincide; both are kept
//    so configurations read like the taxonomy.)
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace croupier::net {

enum class ConnectivityClass : std::uint8_t {
  OpenInternet = 0,  // public IP, no gateway
  UpnpIgd = 1,       // behind a NAT whose port-mapping makes it public
  Natted = 2,        // behind a NAT with the configured filtering policy
  Firewalled = 3,    // public IP but stateful firewall (drop unsolicited)
};

enum class FilteringPolicy : std::uint8_t {
  EndpointIndependent = 0,
  AddressDependent = 1,
  AddressAndPortDependent = 2,
};

/// Ground-truth connectivity configuration of one node.
struct NatConfig {
  ConnectivityClass cls = ConnectivityClass::OpenInternet;
  FilteringPolicy filtering = FilteringPolicy::AddressAndPortDependent;
  sim::Duration mapping_timeout = sim::sec(30);

  static NatConfig open() { return {}; }
  static NatConfig upnp() { return {ConnectivityClass::UpnpIgd, {}, sim::sec(30)}; }
  static NatConfig natted(
      FilteringPolicy f = FilteringPolicy::AddressAndPortDependent,
      sim::Duration timeout = sim::sec(30)) {
    return {ConnectivityClass::Natted, f, timeout};
  }
  static NatConfig firewalled() {
    return {ConnectivityClass::Firewalled,
            FilteringPolicy::AddressAndPortDependent, sim::sec(30)};
  }

  /// True when the rest of the network can reach this node unsolicited.
  [[nodiscard]] bool behaves_public() const {
    return cls == ConnectivityClass::OpenInternet ||
           cls == ConnectivityClass::UpnpIgd;
  }

  /// The binary classification the PSS protocols use.
  [[nodiscard]] NatType nat_type() const {
    return behaves_public() ? NatType::Public : NatType::Private;
  }
};

/// The stateful gateway in front of one private node: a table of
/// (remote node -> last outbound time) driving the filtering decision.
class NatBox {
 public:
  explicit NatBox(NatConfig cfg) : cfg_(cfg) {}

  /// Records that the owning node sent a packet to `dst` at time `now`,
  /// creating or refreshing the corresponding mapping/filter entry.
  void on_outbound(sim::SimTime now, NodeId dst);

  /// Decides whether an inbound packet from `src` arriving at `now` passes
  /// the gateway.
  [[nodiscard]] bool allows_inbound(sim::SimTime now, NodeId src) const;

  /// Number of currently live per-destination entries (tests/diagnostics).
  [[nodiscard]] std::size_t live_entries(sim::SimTime now) const;

  [[nodiscard]] const NatConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] bool entry_live(sim::SimTime now, sim::SimTime last) const {
    return now <= last + cfg_.mapping_timeout;
  }
  void maybe_collect(sim::SimTime now);

  NatConfig cfg_;
  std::unordered_map<NodeId, sim::SimTime> last_outbound_;
  sim::SimTime last_any_outbound_ = 0;
  bool any_outbound_ever_ = false;
  std::uint32_t ops_since_gc_ = 0;
};

}  // namespace croupier::net
