// Cyclon (Voulgaris et al. [6]): the classic single-view gossip PSS.
//
// Used by the paper as the randomness baseline, executed on an all-public
// membership (it has no NAT machinery; pointed at a private node, its
// shuffle request is simply filtered by the target's NAT and the exchange
// fails — which is exactly the bias/partitioning problem the NAT-aware
// protocols exist to solve, and which bench/ablation_nat_oblivious
// demonstrates).
//
// Policies (matching the paper's setup): tail node selection, push-pull
// exchange, swapper merge.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "pss/protocol.hpp"
#include "pss/view.hpp"

namespace croupier::baselines {

constexpr std::uint8_t kCyclonShuffleReq = 0x20;
constexpr std::uint8_t kCyclonShuffleRes = 0x21;

struct CyclonShuffleReq final : net::Message {
  pss::NodeDescriptor sender;
  std::vector<pss::NodeDescriptor> entries;

  [[nodiscard]] std::uint8_t type() const override { return kCyclonShuffleReq; }
  [[nodiscard]] const char* name() const override {
    return "cyclon.shuffle_req";
  }
  void encode(wire::Writer& w) const override;
  static CyclonShuffleReq decode(wire::Reader& r);
};

struct CyclonShuffleRes final : net::Message {
  std::vector<pss::NodeDescriptor> entries;

  [[nodiscard]] std::uint8_t type() const override { return kCyclonShuffleRes; }
  [[nodiscard]] const char* name() const override {
    return "cyclon.shuffle_res";
  }
  void encode(wire::Writer& w) const override;
  static CyclonShuffleRes decode(wire::Reader& r);
};

class Cyclon final : public pss::PeerSampler {
 public:
  Cyclon(Context ctx, pss::PssConfig cfg);

  void init() override;
  void round() override;
  void on_message(net::NodeId from, const net::Message& msg) override;

  std::optional<pss::NodeDescriptor> sample() override;
  [[nodiscard]] std::vector<net::NodeId> out_neighbors() const override;

  [[nodiscard]] const pss::PartialView<pss::NodeDescriptor>& view() const {
    return view_;
  }

 private:
  void handle_request(net::NodeId from, const CyclonShuffleReq& req);
  void handle_response(net::NodeId from, const CyclonShuffleRes& res);

  pss::PssConfig cfg_;
  pss::PartialView<pss::NodeDescriptor> view_;

  struct Pending {
    net::NodeId target;
    std::vector<pss::NodeDescriptor> sent;
  };
  std::deque<Pending> pending_;
};

}  // namespace croupier::baselines
