// Nylon (Kermarrec, Pace, Quéma, Schiavoni — ICDCS'09 [9]): NAT-resilient
// gossip peer sampling via rendezvous points (RVPs) and hole punching.
//
// Single mixed view. Two nodes become each other's RVP whenever they
// complete a view exchange; each node keeps its NAT mappings toward its
// RVPs open with periodic keepalives. To shuffle with a private target,
// the initiator sends a hole-punch request along the chain of RVPs through
// which the target's descriptor travelled (each descriptor remembers the
// neighbour it was learned from); the last RVP — one that holds a live
// link to the target — delivers a connect request, the target punches a
// packet back to the initiator, and the exchange then proceeds directly.
// Simultaneously the initiator fires a probe packet at the target so both
// NATs hold mappings (classic UDP simultaneous open).
//
// Chains are unbounded in the original design (we cap the hop count only
// as a simulation safety net); a single dead hop fails the exchange —
// the fragility under churn/failure the paper reports (fig. 7b), while
// keepalives to the RVP set dominate its overhead (fig. 7a).
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pss/protocol.hpp"
#include "pss/view.hpp"

namespace croupier::baselines {

/// Descriptor annotated with the neighbour it was learned from — the next
/// hop of the RVP chain toward the subject. Local bookkeeping only (the
/// receiver of a descriptor always sets it to the exchange partner), so
/// the wire layout stays the base 8 bytes.
struct NylonDescriptor {
  net::NodeId id = net::kNilNode;
  net::NatType nat_type = net::NatType::Public;
  std::uint16_t age = 0;
  net::NodeId learned_from = net::kNilNode;

  void bump_age() {
    if (age < 0xffff) ++age;
  }

  friend bool operator==(const NylonDescriptor&,
                         const NylonDescriptor&) = default;
};

}  // namespace croupier::baselines

namespace croupier::pss {

/// Nylon descriptors decorate the base triple with the local
/// learned_from bookkeeping (next hop of the RVP chain).
template <>
struct ViewTraits<baselines::NylonDescriptor> {
  static constexpr bool kHasExtra = true;
  using Extra = net::NodeId;

  static net::NodeId id(const baselines::NylonDescriptor& d) { return d.id; }
  static net::NatType nat(const baselines::NylonDescriptor& d) {
    return d.nat_type;
  }
  static std::uint16_t age(const baselines::NylonDescriptor& d) {
    return d.age;
  }
  static Extra extra(const baselines::NylonDescriptor& d) {
    return d.learned_from;
  }
  static baselines::NylonDescriptor make(net::NodeId id, net::NatType nat,
                                         std::uint16_t age, Extra learned) {
    return baselines::NylonDescriptor{id, nat, age, learned};
  }
};

}  // namespace croupier::pss

namespace croupier::baselines {

constexpr std::uint8_t kNylonShuffleReq = 0x40;
constexpr std::uint8_t kNylonShuffleRes = 0x41;
constexpr std::uint8_t kNylonPunchReq = 0x42;
constexpr std::uint8_t kNylonConnect = 0x43;
constexpr std::uint8_t kNylonPunchOpen = 0x44;
constexpr std::uint8_t kNylonProbe = 0x45;
constexpr std::uint8_t kNylonKeepalive = 0x46;

void encode(wire::Writer& w, const NylonDescriptor& d);
NylonDescriptor decode_nylon_descriptor(wire::Reader& r);
void encode(wire::Writer& w, const std::vector<NylonDescriptor>& v);
std::vector<NylonDescriptor> decode_nylon_descriptors(wire::Reader& r);

struct NylonShuffleReq final : net::Message {
  NylonDescriptor sender;
  std::vector<NylonDescriptor> entries;

  [[nodiscard]] std::uint8_t type() const override { return kNylonShuffleReq; }
  [[nodiscard]] const char* name() const override { return "nylon.shuffle_req"; }
  void encode(wire::Writer& w) const override;
  static NylonShuffleReq decode(wire::Reader& r);
};

struct NylonShuffleRes final : net::Message {
  std::vector<NylonDescriptor> entries;

  [[nodiscard]] std::uint8_t type() const override { return kNylonShuffleRes; }
  [[nodiscard]] const char* name() const override { return "nylon.shuffle_res"; }
  void encode(wire::Writer& w) const override;
  static NylonShuffleRes decode(wire::Reader& r);
};

/// Hole-punch request travelling along the RVP chain toward `target`.
struct NylonPunchReq final : net::Message {
  net::NodeId initiator = net::kNilNode;
  net::NatType initiator_type = net::NatType::Public;
  net::NodeId target = net::kNilNode;
  std::uint8_t hops = 0;

  [[nodiscard]] std::uint8_t type() const override { return kNylonPunchReq; }
  [[nodiscard]] const char* name() const override { return "nylon.punch_req"; }
  void encode(wire::Writer& w) const override;
  static NylonPunchReq decode(wire::Reader& r);
};

/// Final chain hop -> target: "initiator wants to talk; punch back".
struct NylonConnect final : net::Message {
  net::NodeId initiator = net::kNilNode;

  [[nodiscard]] std::uint8_t type() const override { return kNylonConnect; }
  [[nodiscard]] const char* name() const override { return "nylon.connect"; }
  void encode(wire::Writer& w) const override;
  static NylonConnect decode(wire::Reader& r);
};

/// Target -> initiator: opens the target's NAT toward the initiator.
struct NylonPunchOpen final : net::Message {
  [[nodiscard]] std::uint8_t type() const override { return kNylonPunchOpen; }
  [[nodiscard]] const char* name() const override { return "nylon.punch_open"; }
  void encode(wire::Writer& w) const override { w.u8(type()); }
};

/// Initiator -> target at punch start: opens the initiator's own NAT
/// (usually filtered at the target; its purpose is the mapping it leaves
/// in the initiator's gateway).
struct NylonProbe final : net::Message {
  [[nodiscard]] std::uint8_t type() const override { return kNylonProbe; }
  [[nodiscard]] const char* name() const override { return "nylon.probe"; }
  void encode(wire::Writer& w) const override { w.u8(type()); }
};

struct NylonKeepalive final : net::Message {
  [[nodiscard]] std::uint8_t type() const override { return kNylonKeepalive; }
  [[nodiscard]] const char* name() const override { return "nylon.keepalive"; }
  void encode(wire::Writer& w) const override { w.u8(type()); }
};

struct NylonConfig {
  pss::PssConfig base;
  std::size_t max_rvp_links = 80;      // bound on the RVP table
  std::size_t keepalive_rounds = 2;    // keepalive period per live RVP link
  std::size_t rvp_ttl_rounds = 80;     // link expiry without refresh
  std::uint8_t max_punch_hops = 16;    // simulation safety net (paper: unbounded)
  std::size_t routing_table_size = 200;  // punch-chain next-hop entries
  std::size_t routing_ttl_rounds = 60;
};

class Nylon final : public pss::PeerSampler {
 public:
  Nylon(Context ctx, NylonConfig cfg);

  void init() override;
  void round() override;
  void on_message(net::NodeId from, const net::Message& msg) override;

  std::optional<pss::NodeDescriptor> sample() override;
  [[nodiscard]] std::vector<net::NodeId> out_neighbors() const override;
  [[nodiscard]] std::vector<net::NodeId> usable_neighbors(
      const AliveFn& alive) const override;

  [[nodiscard]] const pss::PartialView<NylonDescriptor>& view() const {
    return view_;
  }
  [[nodiscard]] std::size_t rvp_link_count() const { return rvp_links_.size(); }
  [[nodiscard]] std::size_t routing_entry_count() const {
    return routing_.size();
  }
  [[nodiscard]] std::uint64_t punches_started() const { return punches_started_; }
  [[nodiscard]] std::uint64_t punches_completed() const {
    return punches_completed_;
  }

 private:
  void handle_request(net::NodeId from, const NylonShuffleReq& req);
  void handle_response(net::NodeId from, const NylonShuffleRes& res);
  void handle_punch_req(net::NodeId from, const NylonPunchReq& punch);
  void send_shuffle(const NylonDescriptor& target, NylonShuffleReq req);
  void touch_rvp(net::NodeId peer);
  [[nodiscard]] bool rvp_live(net::NodeId peer) const;
  void keepalives();
  void learn_route(net::NodeId target, net::NodeId next_hop);
  [[nodiscard]] net::NodeId route_to(net::NodeId target) const;

  NylonConfig cfg_;
  pss::PartialView<NylonDescriptor> view_;
  std::unordered_map<net::NodeId, std::uint64_t> rvp_links_;  // id -> round

  // Punch-chain routing state: for each known target, the neighbour its
  // descriptor was last received from ("maintaining routing tables to
  // nodes that have recently been communicated with", paper §I on Nylon).
  // The current *view* is not enough: swapper merging ships descriptors
  // away immediately, so chains must follow historical forwarding state.
  struct Route {
    net::NodeId next_hop;
    std::uint64_t round;
  };
  std::unordered_map<net::NodeId, Route> routing_;
  std::uint64_t round_counter_ = 0;

  struct Pending {
    net::NodeId target;
    std::vector<NylonDescriptor> sent;
  };
  std::deque<Pending> pending_;

  // Prepared shuffle requests awaiting hole-punch completion.
  struct AwaitingPunch {
    net::NodeId target;
    NylonShuffleReq req;
  };
  std::deque<AwaitingPunch> awaiting_punch_;

  std::uint64_t punches_started_ = 0;
  std::uint64_t punches_completed_ = 0;
};

}  // namespace croupier::baselines
