// Gozar (Payberah, Dowling, Haridi — DAIS'11 [10]): NAT-friendly peer
// sampling with one-hop distributed NAT traversal.
//
// Gozar keeps a single mixed view. Every private node maintains a small
// redundant set of public *relay parents*; it keeps its NAT mapping toward
// each parent open with periodic pings and advertises the parents inside
// its own node descriptors. A node that wants to shuffle with a private
// target relays the request through one of the parents cached in the
// target's descriptor (one hop); the response comes back directly if the
// initiator is public, or back through the same relay otherwise.
//
// Compared to Croupier: private nodes are full shuffle targets (so they
// both receive requests and send responses), descriptors of private nodes
// are larger (they carry parent addresses), and public nodes carry relay
// traffic — the structural sources of Gozar's higher overhead in paper
// fig. 7a and its weaker post-failure connectivity in fig. 7b (a private
// node whose cached parents all died is unreachable).
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "pss/protocol.hpp"
#include "pss/view.hpp"

namespace croupier::baselines {

/// Descriptor decorated with the subject's relay parents (public nodes).
struct GozarDescriptor {
  net::NodeId id = net::kNilNode;
  net::NatType nat_type = net::NatType::Public;
  std::uint16_t age = 0;
  std::vector<net::NodeId> parents;  // empty for public nodes

  void bump_age() {
    if (age < 0xffff) ++age;
  }

  friend bool operator==(const GozarDescriptor&,
                         const GozarDescriptor&) = default;
};

void encode(wire::Writer& w, const GozarDescriptor& d);
GozarDescriptor decode_gozar_descriptor(wire::Reader& r);

}  // namespace croupier::baselines

namespace croupier::pss {

/// Gozar descriptors carry the subject's relay parents beyond the base
/// (id, nat, age) triple; the parent lists live in the store's side
/// column.
template <>
struct ViewTraits<baselines::GozarDescriptor> {
  static constexpr bool kHasExtra = true;
  using Extra = std::vector<net::NodeId>;

  static net::NodeId id(const baselines::GozarDescriptor& d) { return d.id; }
  static net::NatType nat(const baselines::GozarDescriptor& d) {
    return d.nat_type;
  }
  static std::uint16_t age(const baselines::GozarDescriptor& d) {
    return d.age;
  }
  static const Extra& extra(const baselines::GozarDescriptor& d) {
    return d.parents;
  }
  static baselines::GozarDescriptor make(net::NodeId id, net::NatType nat,
                                         std::uint16_t age,
                                         const Extra& parents) {
    return baselines::GozarDescriptor{id, nat, age, parents};
  }
};

}  // namespace croupier::pss

namespace croupier::baselines {
void encode(wire::Writer& w, const std::vector<GozarDescriptor>& v);
std::vector<GozarDescriptor> decode_gozar_descriptors(wire::Reader& r);

constexpr std::uint8_t kGozarShuffleReq = 0x30;
constexpr std::uint8_t kGozarShuffleRes = 0x31;
constexpr std::uint8_t kGozarRelayedReq = 0x32;
constexpr std::uint8_t kGozarRelayedRes = 0x33;
constexpr std::uint8_t kGozarPing = 0x34;
constexpr std::uint8_t kGozarPong = 0x35;

struct GozarShuffleReq final : net::Message {
  GozarDescriptor sender;
  /// Distinguishes redundant relay copies of one exchange (the target
  /// answers the first copy and drops the rest).
  std::uint16_t nonce = 0;
  std::vector<GozarDescriptor> entries;

  [[nodiscard]] std::uint8_t type() const override { return kGozarShuffleReq; }
  [[nodiscard]] const char* name() const override { return "gozar.shuffle_req"; }
  void encode(wire::Writer& w) const override;
  static GozarShuffleReq decode(wire::Reader& r);
};

struct GozarShuffleRes final : net::Message {
  net::NodeId responder = net::kNilNode;
  std::vector<GozarDescriptor> entries;

  [[nodiscard]] std::uint8_t type() const override { return kGozarShuffleRes; }
  [[nodiscard]] const char* name() const override { return "gozar.shuffle_res"; }
  void encode(wire::Writer& w) const override;
  static GozarShuffleRes decode(wire::Reader& r);
};

/// Request en route to a relay parent, to be forwarded one hop.
struct GozarRelayedReq final : net::Message {
  net::NodeId final_target = net::kNilNode;
  GozarShuffleReq inner;

  [[nodiscard]] std::uint8_t type() const override { return kGozarRelayedReq; }
  [[nodiscard]] const char* name() const override { return "gozar.relayed_req"; }
  void encode(wire::Writer& w) const override;
  static GozarRelayedReq decode(wire::Reader& r);
};

/// Response en route back through the relay (private initiator case).
struct GozarRelayedRes final : net::Message {
  net::NodeId final_target = net::kNilNode;
  GozarShuffleRes inner;

  [[nodiscard]] std::uint8_t type() const override { return kGozarRelayedRes; }
  [[nodiscard]] const char* name() const override { return "gozar.relayed_res"; }
  void encode(wire::Writer& w) const override;
  static GozarRelayedRes decode(wire::Reader& r);
};

struct GozarPing final : net::Message {
  [[nodiscard]] std::uint8_t type() const override { return kGozarPing; }
  [[nodiscard]] const char* name() const override { return "gozar.ping"; }
  void encode(wire::Writer& w) const override { w.u8(type()); }
};

struct GozarPong final : net::Message {
  [[nodiscard]] std::uint8_t type() const override { return kGozarPong; }
  [[nodiscard]] const char* name() const override { return "gozar.pong"; }
  void encode(wire::Writer& w) const override { w.u8(type()); }
};

struct GozarConfig {
  pss::PssConfig base;
  std::size_t num_parents = 3;            // redundancy z
  std::size_t keepalive_rounds = 10;      // ping period (rounds); < NAT timeout
  std::size_t parent_timeout_rounds = 45; // drop parent after silent this long
  /// Relay copies per exchange with a private target. Gozar's default is
  /// one relay with failover; >1 enables its redundant-relaying variant
  /// (lower latency, duplicated relay traffic) — ablated in
  /// bench/ablation_gozar_redundancy.
  std::size_t relay_redundancy = 1;
};

class Gozar final : public pss::PeerSampler {
 public:
  Gozar(Context ctx, GozarConfig cfg);

  void init() override;
  void round() override;
  void on_message(net::NodeId from, const net::Message& msg) override;

  std::optional<pss::NodeDescriptor> sample() override;
  [[nodiscard]] std::vector<net::NodeId> out_neighbors() const override;
  [[nodiscard]] std::vector<net::NodeId> usable_neighbors(
      const AliveFn& alive) const override;

  [[nodiscard]] const pss::PartialView<GozarDescriptor>& view() const {
    return view_;
  }
  [[nodiscard]] std::vector<net::NodeId> parents() const;

 private:
  void handle_request(net::NodeId physical_from, const GozarShuffleReq& req);
  void handle_response(const GozarShuffleRes& res);
  void maintain_parents();
  [[nodiscard]] GozarDescriptor self_descriptor() const;

  GozarConfig cfg_;
  pss::PartialView<GozarDescriptor> view_;

  struct Parent {
    net::NodeId id;
    std::uint64_t last_pong_round;
  };
  std::vector<Parent> parents_;  // only populated on private nodes
  std::uint64_t round_counter_ = 0;

  struct Pending {
    net::NodeId target;
    std::vector<GozarDescriptor> sent;
  };
  std::deque<Pending> pending_;

  // Dedup window for redundant relay copies: (initiator, nonce) pairs.
  std::deque<std::pair<net::NodeId, std::uint16_t>> seen_exchanges_;
  std::uint16_t next_nonce_ = 1;
};

}  // namespace croupier::baselines
