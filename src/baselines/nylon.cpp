#include "baselines/nylon.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.hpp"

namespace croupier::baselines {

void encode(wire::Writer& w, const NylonDescriptor& d) {
  w.u32(d.id);
  w.u16(0x2710);
  w.u8(static_cast<std::uint8_t>(d.nat_type));
  w.u8(static_cast<std::uint8_t>(std::min<std::uint16_t>(d.age, 0xff)));
}

NylonDescriptor decode_nylon_descriptor(wire::Reader& r) {
  NylonDescriptor d;
  d.id = r.u32();
  (void)r.u16();
  d.nat_type = static_cast<net::NatType>(r.u8());
  d.age = r.u8();
  return d;
}

void encode(wire::Writer& w, const std::vector<NylonDescriptor>& v) {
  w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(v.size(), 0xff)));
  for (const auto& d : v) encode(w, d);
}

std::vector<NylonDescriptor> decode_nylon_descriptors(wire::Reader& r) {
  const std::size_t n = r.u8();
  std::vector<NylonDescriptor> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    out.push_back(decode_nylon_descriptor(r));
  }
  return out;
}

void NylonShuffleReq::encode(wire::Writer& w) const {
  w.u8(type());
  baselines::encode(w, sender);
  baselines::encode(w, entries);
}

NylonShuffleReq NylonShuffleReq::decode(wire::Reader& r) {
  NylonShuffleReq m;
  (void)r.u8();
  m.sender = decode_nylon_descriptor(r);
  m.entries = decode_nylon_descriptors(r);
  return m;
}

void NylonShuffleRes::encode(wire::Writer& w) const {
  w.u8(type());
  baselines::encode(w, entries);
}

NylonShuffleRes NylonShuffleRes::decode(wire::Reader& r) {
  NylonShuffleRes m;
  (void)r.u8();
  m.entries = decode_nylon_descriptors(r);
  return m;
}

void NylonPunchReq::encode(wire::Writer& w) const {
  w.u8(type());
  w.u32(initiator);
  w.u16(0x2710);
  w.u8(static_cast<std::uint8_t>(initiator_type));
  w.u32(target);
  w.u16(0x2710);
  w.u8(hops);
}

NylonPunchReq NylonPunchReq::decode(wire::Reader& r) {
  NylonPunchReq m;
  (void)r.u8();
  m.initiator = r.u32();
  (void)r.u16();
  m.initiator_type = static_cast<net::NatType>(r.u8());
  m.target = r.u32();
  (void)r.u16();
  m.hops = r.u8();
  return m;
}

void NylonConnect::encode(wire::Writer& w) const {
  w.u8(type());
  w.u32(initiator);
  w.u16(0x2710);
}

NylonConnect NylonConnect::decode(wire::Reader& r) {
  NylonConnect m;
  (void)r.u8();
  m.initiator = r.u32();
  (void)r.u16();
  return m;
}

Nylon::Nylon(Context ctx, NylonConfig cfg)
    : PeerSampler(std::move(ctx)), cfg_(cfg), view_(cfg.base.view_size, ctx_.arena) {
  CROUPIER_ASSERT(cfg_.base.shuffle_size > 0 &&
                  cfg_.base.shuffle_size <= cfg_.base.view_size);
  CROUPIER_ASSERT(cfg_.keepalive_rounds > 0);
  CROUPIER_ASSERT(cfg_.rvp_ttl_rounds >= cfg_.keepalive_rounds);
  view_.set_owner(self());
}

void Nylon::init() {
  const auto seeds =
      bootstrap().sample_public(cfg_.base.bootstrap_fanout, self(), rng());
  for (net::NodeId id : seeds) {
    view_.force_add(NylonDescriptor{id, net::NatType::Public, 0, id});
  }
}

void Nylon::touch_rvp(net::NodeId peer) {
  if (peer == self()) return;
  auto it = rvp_links_.find(peer);
  if (it != rvp_links_.end()) {
    it->second = round_counter_;
    return;
  }
  if (rvp_links_.size() >= cfg_.max_rvp_links) {
    // Evict the stalest link; ties break on the lower peer id so the
    // victim never depends on hash-table iteration order.
    net::NodeId victim = net::kNilNode;
    std::uint64_t victim_round = 0;
    // detlint:allow(unordered-iter) pure min-selection under the total
    // (round, id) order above — the result is visit-order-insensitive.
    for (const auto& [p, seen] : rvp_links_) {
      if (victim == net::kNilNode || seen < victim_round ||
          (seen == victim_round && p < victim)) {
        victim = p;
        victim_round = seen;
      }
    }
    rvp_links_.erase(victim);
  }
  rvp_links_.emplace(peer, round_counter_);
}

bool Nylon::rvp_live(net::NodeId peer) const {
  const auto it = rvp_links_.find(peer);
  return it != rvp_links_.end() &&
         round_counter_ - it->second <= cfg_.rvp_ttl_rounds;
}

void Nylon::learn_route(net::NodeId target, net::NodeId next_hop) {
  if (target == self() || next_hop == self()) return;
  auto it = routing_.find(target);
  if (it != routing_.end()) {
    it->second = Route{next_hop, round_counter_};
    return;
  }
  if (routing_.size() >= cfg_.routing_table_size) {
    net::NodeId victim = net::kNilNode;
    std::uint64_t victim_round = 0;
    // detlint:allow(unordered-iter) pure min-selection under the total
    // (round, id) order above — the result is visit-order-insensitive.
    for (const auto& [t, route] : routing_) {
      if (victim == net::kNilNode || route.round < victim_round ||
          (route.round == victim_round && t < victim)) {
        victim = t;
        victim_round = route.round;
      }
    }
    routing_.erase(victim);
  }
  routing_.emplace(target, Route{next_hop, round_counter_});
}

net::NodeId Nylon::route_to(net::NodeId target) const {
  const auto it = routing_.find(target);
  if (it == routing_.end() ||
      round_counter_ - it->second.round > cfg_.routing_ttl_rounds) {
    return net::kNilNode;
  }
  return it->second.next_hop;
}

void Nylon::keepalives() {
  // Expire stale links, then refresh the survivors' NAT mappings. Every
  // keepalive is a real packet both here and at the receiving end: the RVP
  // machinery is what makes Nylon expensive (paper fig. 7a).
  std::erase_if(rvp_links_, [this](const auto& kv) {
    return round_counter_ - kv.second > cfg_.rvp_ttl_rounds;
  });
  if (round_counter_ % cfg_.keepalive_rounds != 0) return;
  std::vector<net::NodeId> peers;
  peers.reserve(rvp_links_.size());
  // detlint:allow(unordered-iter) keys only, sorted below before any
  // side effect — the send order is id-ascending, not hash order.
  for (const auto& [peer, _] : rvp_links_) peers.push_back(peer);
  std::sort(peers.begin(), peers.end());
  for (const net::NodeId peer : peers) {
    network().send(self(), peer, std::make_shared<NylonKeepalive>());
  }
}

void Nylon::round() {
  ++round_counter_;
  view_.age_all();
  keepalives();

  const auto target = view_.oldest();
  if (!target.has_value()) {
    init();
    return;
  }
  view_.remove(target->id);

  NylonShuffleReq req;
  req.sender = NylonDescriptor{self(), nat_type(), 0, self()};
  req.entries = view_.random_subset(cfg_.base.shuffle_size - 1, rng());

  pending_.push_back(Pending{target->id, req.entries});
  while (pending_.size() > 8) pending_.pop_front();

  send_shuffle(*target, std::move(req));
}

void Nylon::send_shuffle(const NylonDescriptor& target, NylonShuffleReq req) {
  // Direct delivery works if the target is public, or if we hold a live
  // RVP link with it (mutual keepalives keep both NATs open).
  if (target.nat_type == net::NatType::Public || rvp_live(target.id)) {
    network().send(self(), target.id,
                   std::make_shared<NylonShuffleReq>(std::move(req)));
    return;
  }

  // Private target without a live link: UDP hole punch through the RVP
  // chain — preferring fresh routing state, falling back to the neighbour
  // the descriptor came from.
  net::NodeId first_hop = route_to(target.id);
  if (first_hop == net::kNilNode) first_hop = target.learned_from;
  if (first_hop == net::kNilNode || first_hop == self()) {
    return;  // no chain to follow: the exchange fails this round
  }
  ++punches_started_;

  // Probe opens our own NAT toward the target (simultaneous open); the
  // packet itself is filtered at the target's gateway.
  network().send(self(), target.id, std::make_shared<NylonProbe>());

  auto punch = std::make_shared<NylonPunchReq>();
  punch->initiator = self();
  punch->initiator_type = nat_type();
  punch->target = target.id;
  punch->hops = 0;
  network().send(self(), first_hop, std::move(punch));

  awaiting_punch_.push_back(AwaitingPunch{target.id, std::move(req)});
  while (awaiting_punch_.size() > 8) awaiting_punch_.pop_front();
}

void Nylon::on_message(net::NodeId from, const net::Message& msg) {
  switch (msg.type()) {
    case kNylonShuffleReq:
      handle_request(from, static_cast<const NylonShuffleReq&>(msg));
      break;
    case kNylonShuffleRes:
      handle_response(from, static_cast<const NylonShuffleRes&>(msg));
      break;
    case kNylonPunchReq:
      handle_punch_req(from, static_cast<const NylonPunchReq&>(msg));
      break;
    case kNylonConnect: {
      const auto& c = static_cast<const NylonConnect&>(msg);
      // Punch back: this outbound packet opens our NAT toward the
      // initiator; it reaches them because their probe opened theirs.
      network().send(self(), c.initiator, std::make_shared<NylonPunchOpen>());
      break;
    }
    case kNylonPunchOpen: {
      // The target's NAT is now open for us: fire the prepared shuffle.
      for (auto it = awaiting_punch_.begin(); it != awaiting_punch_.end();
           ++it) {
        if (it->target == from) {
          ++punches_completed_;
          NylonShuffleReq req = std::move(it->req);
          awaiting_punch_.erase(it);
          network().send(self(), from,
                         std::make_shared<NylonShuffleReq>(std::move(req)));
          break;
        }
      }
      break;
    }
    case kNylonProbe:
    case kNylonKeepalive: {
      // Refresh our side of the link if we track this peer.
      auto it = rvp_links_.find(from);
      if (it != rvp_links_.end()) it->second = round_counter_;
      break;
    }
    default:
      break;
  }
}

void Nylon::handle_punch_req(net::NodeId from, const NylonPunchReq& punch) {
  (void)from;
  if (punch.hops >= cfg_.max_punch_hops) return;
  if (punch.target == self()) {
    // Degenerate chain end: we are the target.
    network().send(self(), punch.initiator,
                   std::make_shared<NylonPunchOpen>());
    return;
  }
  if (rvp_live(punch.target)) {
    // Our mutual keepalives hold the target's NAT open for us: deliver the
    // connect request on the last hop.
    auto connect = std::make_shared<NylonConnect>();
    connect->initiator = punch.initiator;
    network().send(self(), punch.target, std::move(connect));
    return;
  }
  // Otherwise forward along our own chain toward the target: routing
  // state first, then the live view as a fallback.
  net::NodeId next = route_to(punch.target);
  if (next == net::kNilNode || next == from) {
    const auto desc = view_.find(punch.target);
    if (desc.has_value()) next = desc->learned_from;
  }
  if (next == net::kNilNode || next == self() || next == from) {
    return;  // chain broken: the exchange fails
  }
  auto fwd = std::make_shared<NylonPunchReq>(punch);
  fwd->hops = static_cast<std::uint8_t>(punch.hops + 1);
  network().send(self(), next, std::move(fwd));
}

void Nylon::handle_request(net::NodeId from, const NylonShuffleReq& req) {
  NylonShuffleRes res;
  res.entries = view_.random_subset_excluding(cfg_.base.shuffle_size,
                                              req.sender.id, rng());

  std::vector<NylonDescriptor> incoming = req.entries;
  incoming.push_back(req.sender);
  // Every received descriptor's chain next-hop is the node that sent it;
  // the routing table remembers this even after the view entry moves on.
  for (auto& d : incoming) {
    d.learned_from = req.sender.id;
    learn_route(d.id, req.sender.id);
  }
  view_.merge_swapper(res.entries, incoming, self());

  // A completed exchange makes the two endpoints each other's RVPs.
  touch_rvp(req.sender.id);

  network().send(self(), from,
                 std::make_shared<NylonShuffleRes>(std::move(res)));
}

void Nylon::handle_response(net::NodeId from, const NylonShuffleRes& res) {
  std::vector<NylonDescriptor> sent;
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->target == from) {
      sent = std::move(it->sent);
      pending_.erase(it);
      break;
    }
  }
  std::vector<NylonDescriptor> incoming = res.entries;
  for (auto& d : incoming) {
    d.learned_from = from;
    learn_route(d.id, from);
  }
  view_.merge_swapper(sent, incoming, self());
  touch_rvp(from);
}

std::optional<pss::NodeDescriptor> Nylon::sample() {
  const auto d = view_.random_entry(rng());
  if (!d.has_value()) return std::nullopt;
  return pss::NodeDescriptor{d->id, d->nat_type, d->age};
}

std::vector<net::NodeId> Nylon::out_neighbors() const {
  std::vector<net::NodeId> out;
  out.reserve(view_.size());
  for (const auto& d : view_.entries()) out.push_back(d.id);
  return out;
}

std::vector<net::NodeId> Nylon::usable_neighbors(const AliveFn& alive) const {
  std::vector<net::NodeId> out;
  for (const auto& d : view_.entries()) {
    if (!alive(d.id)) continue;
    if (d.nat_type == net::NatType::Public) {
      out.push_back(d.id);
      continue;
    }
    // Private neighbour: reachable only if the chain's first hop is still
    // alive (either we hold a live RVP link ourselves, or the node we
    // learned the descriptor from survives to forward the punch).
    if (rvp_live(d.id) ||
        (d.learned_from != net::kNilNode && alive(d.learned_from))) {
      out.push_back(d.id);
    }
  }
  return out;
}

}  // namespace croupier::baselines
