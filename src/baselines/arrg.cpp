#include "baselines/arrg.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"

namespace croupier::baselines {

void ArrgShuffleReq::encode(wire::Writer& w) const {
  w.u8(type());
  pss::encode(w, sender);
  pss::encode(w, entries);
}

ArrgShuffleReq ArrgShuffleReq::decode(wire::Reader& r) {
  ArrgShuffleReq m;
  (void)r.u8();
  m.sender = pss::decode_descriptor(r);
  m.entries = pss::decode_descriptors(r);
  return m;
}

void ArrgShuffleRes::encode(wire::Writer& w) const {
  w.u8(type());
  pss::encode(w, entries);
}

ArrgShuffleRes ArrgShuffleRes::decode(wire::Reader& r) {
  ArrgShuffleRes m;
  (void)r.u8();
  m.entries = pss::decode_descriptors(r);
  return m;
}

Arrg::Arrg(Context ctx, ArrgConfig cfg)
    : PeerSampler(std::move(ctx)), cfg_(cfg), view_(cfg.base.view_size, ctx_.arena) {
  CROUPIER_ASSERT(cfg_.open_list_size > 0);
  view_.set_owner(self());
}

void Arrg::init() {
  const auto seeds =
      bootstrap().sample_any(cfg_.base.bootstrap_fanout, self(), rng());
  for (net::NodeId id : seeds) {
    const net::NatType type = ctx_.network->attached(id)
                                  ? ctx_.network->type_of(id)
                                  : net::NatType::Public;
    view_.force_add(pss::NodeDescriptor{id, type, 0});
  }
}

void Arrg::note_success(net::NodeId partner) {
  const auto it = std::find(open_list_.begin(), open_list_.end(), partner);
  if (it != open_list_.end()) open_list_.erase(it);
  open_list_.push_back(partner);
  while (open_list_.size() > cfg_.open_list_size) open_list_.pop_front();
}

void Arrg::start_exchange(net::NodeId target) {
  ArrgShuffleReq req;
  req.sender = pss::NodeDescriptor::self(self(), nat_type());
  req.entries = view_.random_subset_excluding(cfg_.base.shuffle_size - 1,
                                              target, rng());
  inflight_ = Pending{target, req.entries, false};
  network().send(self(), target,
                 std::make_shared<ArrgShuffleReq>(std::move(req)));
}

void Arrg::round() {
  view_.age_all();

  // Failure detection at round granularity: an exchange started last
  // round that never got a response counts as failed, and we retry with a
  // member of the open list (the ARRG fallback that causes its bias).
  if (inflight_.has_value() && !inflight_->answered &&
      !open_list_.empty()) {
    ++fallbacks_;
    const net::NodeId fallback =
        open_list_[rng().index(open_list_.size())];
    start_exchange(fallback);
    return;
  }

  const auto target = view_.random_entry(rng());
  if (!target.has_value()) {
    init();
    return;
  }
  start_exchange(target->id);
}

void Arrg::on_message(net::NodeId from, const net::Message& msg) {
  switch (msg.type()) {
    case kArrgShuffleReq: {
      const auto& req = static_cast<const ArrgShuffleReq&>(msg);
      ArrgShuffleRes res;
      res.entries =
          view_.random_subset_excluding(cfg_.base.shuffle_size, from, rng());
      std::vector<pss::NodeDescriptor> incoming = req.entries;
      incoming.push_back(req.sender);
      view_.merge_swapper(res.entries, incoming, self());
      note_success(from);
      network().send(self(), from,
                     std::make_shared<ArrgShuffleRes>(std::move(res)));
      break;
    }
    case kArrgShuffleRes: {
      const auto& res = static_cast<const ArrgShuffleRes&>(msg);
      if (inflight_.has_value() && inflight_->target == from) {
        view_.merge_swapper(inflight_->sent, res.entries, self());
        inflight_->answered = true;
        note_success(from);
      }
      break;
    }
    default:
      break;
  }
}

std::optional<pss::NodeDescriptor> Arrg::sample() {
  return view_.random_entry(rng());
}

std::vector<net::NodeId> Arrg::out_neighbors() const {
  std::vector<net::NodeId> out;
  out.reserve(view_.size());
  for (const auto& d : view_.entries()) out.push_back(d.id);
  return out;
}

}  // namespace croupier::baselines
