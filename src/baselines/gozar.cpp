#include "baselines/gozar.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"

namespace croupier::baselines {

void encode(wire::Writer& w, const GozarDescriptor& d) {
  // Base descriptor layout (8 B) plus the advertised relay parents: count
  // byte + 6 B endpoint each. This is the wire-size premium Gozar pays on
  // every private descriptor it gossips.
  w.u32(d.id);
  w.u16(0x2710);  // port stand-in
  w.u8(static_cast<std::uint8_t>(d.nat_type));
  w.u8(static_cast<std::uint8_t>(std::min<std::uint16_t>(d.age, 0xff)));
  w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(d.parents.size(), 0xff)));
  for (net::NodeId p : d.parents) {
    w.u32(p);
    w.u16(0x2710);
  }
}

GozarDescriptor decode_gozar_descriptor(wire::Reader& r) {
  GozarDescriptor d;
  d.id = r.u32();
  (void)r.u16();
  d.nat_type = static_cast<net::NatType>(r.u8());
  d.age = r.u8();
  const std::size_t n = r.u8();
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    d.parents.push_back(r.u32());
    (void)r.u16();
  }
  return d;
}

void encode(wire::Writer& w, const std::vector<GozarDescriptor>& v) {
  w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(v.size(), 0xff)));
  for (const auto& d : v) encode(w, d);
}

std::vector<GozarDescriptor> decode_gozar_descriptors(wire::Reader& r) {
  const std::size_t n = r.u8();
  std::vector<GozarDescriptor> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    out.push_back(decode_gozar_descriptor(r));
  }
  return out;
}

void GozarShuffleReq::encode(wire::Writer& w) const {
  w.u8(type());
  baselines::encode(w, sender);
  w.u16(nonce);
  baselines::encode(w, entries);
}

GozarShuffleReq GozarShuffleReq::decode(wire::Reader& r) {
  GozarShuffleReq m;
  (void)r.u8();
  m.sender = decode_gozar_descriptor(r);
  m.nonce = r.u16();
  m.entries = decode_gozar_descriptors(r);
  return m;
}

void GozarShuffleRes::encode(wire::Writer& w) const {
  w.u8(type());
  w.u32(responder);
  w.u16(0x2710);
  baselines::encode(w, entries);
}

GozarShuffleRes GozarShuffleRes::decode(wire::Reader& r) {
  GozarShuffleRes m;
  (void)r.u8();
  m.responder = r.u32();
  (void)r.u16();
  m.entries = decode_gozar_descriptors(r);
  return m;
}

void GozarRelayedReq::encode(wire::Writer& w) const {
  w.u8(type());
  w.u32(final_target);
  w.u16(0x2710);
  inner.encode(w);
}

GozarRelayedReq GozarRelayedReq::decode(wire::Reader& r) {
  GozarRelayedReq m;
  (void)r.u8();
  m.final_target = r.u32();
  (void)r.u16();
  m.inner = GozarShuffleReq::decode(r);
  return m;
}

void GozarRelayedRes::encode(wire::Writer& w) const {
  w.u8(type());
  w.u32(final_target);
  w.u16(0x2710);
  inner.encode(w);
}

GozarRelayedRes GozarRelayedRes::decode(wire::Reader& r) {
  GozarRelayedRes m;
  (void)r.u8();
  m.final_target = r.u32();
  (void)r.u16();
  m.inner = GozarShuffleRes::decode(r);
  return m;
}

Gozar::Gozar(Context ctx, GozarConfig cfg)
    : PeerSampler(std::move(ctx)), cfg_(cfg), view_(cfg.base.view_size, ctx_.arena) {
  CROUPIER_ASSERT(cfg_.num_parents > 0);
  CROUPIER_ASSERT(cfg_.base.shuffle_size > 0 &&
                  cfg_.base.shuffle_size <= cfg_.base.view_size);
  view_.set_owner(self());
}

GozarDescriptor Gozar::self_descriptor() const {
  GozarDescriptor d;
  d.id = self();
  d.nat_type = nat_type();
  d.age = 0;
  if (nat_type() == net::NatType::Private) {
    d.parents.reserve(parents_.size());
    for (const auto& p : parents_) d.parents.push_back(p.id);
  }
  return d;
}

void Gozar::init() {
  const auto seeds =
      bootstrap().sample_public(cfg_.base.bootstrap_fanout, self(), rng());
  for (net::NodeId id : seeds) {
    view_.force_add(GozarDescriptor{id, net::NatType::Public, 0, {}});
  }
  if (nat_type() == net::NatType::Private) {
    // Adopt initial parents from the bootstrap set and open NAT mappings
    // toward them right away.
    for (net::NodeId id : seeds) {
      if (parents_.size() >= cfg_.num_parents) break;
      parents_.push_back(Parent{id, round_counter_});
      network().send(self(), id, std::make_shared<GozarPing>());
    }
  }
}

void Gozar::maintain_parents() {
  if (nat_type() != net::NatType::Private) return;

  // Drop parents that have been silent too long.
  std::erase_if(parents_, [this](const Parent& p) {
    return round_counter_ - p.last_pong_round > cfg_.parent_timeout_rounds;
  });

  // Re-fill from the public nodes currently in the view.
  if (parents_.size() < cfg_.num_parents) {
    for (const auto& d : view_.entries()) {
      if (parents_.size() >= cfg_.num_parents) break;
      if (d.nat_type != net::NatType::Public) continue;
      const bool already =
          std::any_of(parents_.begin(), parents_.end(),
                      [&](const Parent& p) { return p.id == d.id; });
      if (already) continue;
      parents_.push_back(Parent{d.id, round_counter_});
      network().send(self(), d.id, std::make_shared<GozarPing>());
    }
  }

  // Periodic keepalive: holds the NAT mapping open and probes liveness.
  if (round_counter_ % cfg_.keepalive_rounds == 0) {
    for (const auto& p : parents_) {
      network().send(self(), p.id, std::make_shared<GozarPing>());
    }
  }
}

void Gozar::round() {
  ++round_counter_;
  view_.age_all();
  maintain_parents();

  const auto target = view_.oldest();
  if (!target.has_value()) {
    init();
    return;
  }
  view_.remove(target->id);

  GozarShuffleReq req;
  req.sender = self_descriptor();
  req.nonce = next_nonce_++;
  req.entries = view_.random_subset(cfg_.base.shuffle_size - 1, rng());

  pending_.push_back(Pending{target->id, req.entries});
  while (pending_.size() > 8) pending_.pop_front();

  if (target->nat_type == net::NatType::Public) {
    network().send(self(), target->id,
                   std::make_shared<GozarShuffleReq>(std::move(req)));
    return;
  }

  // Private target: one-hop relay through parents cached in the
  // descriptor, redundantly through up to `relay_redundancy` of them
  // (the target answers one copy). A fully stale parent list means the
  // exchange fails — Gozar's fragility under failure (paper fig. 7b).
  if (target->parents.empty()) return;
  const auto relays = rng().sample(
      std::span<const net::NodeId>(target->parents), cfg_.relay_redundancy);
  for (net::NodeId relay : relays) {
    auto relayed = std::make_shared<GozarRelayedReq>();
    relayed->final_target = target->id;
    relayed->inner = req;
    network().send(self(), relay, std::move(relayed));
  }
}

void Gozar::on_message(net::NodeId from, const net::Message& msg) {
  switch (msg.type()) {
    case kGozarShuffleReq:
      handle_request(from, static_cast<const GozarShuffleReq&>(msg));
      break;
    case kGozarShuffleRes:
      handle_response(static_cast<const GozarShuffleRes&>(msg));
      break;
    case kGozarRelayedReq: {
      // We are the relay: forward the inner request one hop to our child.
      const auto& rel = static_cast<const GozarRelayedReq&>(msg);
      network().send(self(), rel.final_target,
                     std::make_shared<GozarShuffleReq>(rel.inner));
      break;
    }
    case kGozarRelayedRes: {
      // We are the relay on the response path (private initiator).
      const auto& rel = static_cast<const GozarRelayedRes&>(msg);
      network().send(self(), rel.final_target,
                     std::make_shared<GozarShuffleRes>(rel.inner));
      break;
    }
    case kGozarPing:
      network().send(self(), from, std::make_shared<GozarPong>());
      break;
    case kGozarPong: {
      for (auto& p : parents_) {
        if (p.id == from) p.last_pong_round = round_counter_;
      }
      break;
    }
    default:
      break;
  }
}

void Gozar::handle_request(net::NodeId physical_from,
                           const GozarShuffleReq& req) {
  // Drop redundant relay copies of an exchange we already served.
  const auto key = std::make_pair(req.sender.id, req.nonce);
  if (std::find(seen_exchanges_.begin(), seen_exchanges_.end(), key) !=
      seen_exchanges_.end()) {
    return;
  }
  seen_exchanges_.push_back(key);
  while (seen_exchanges_.size() > 32) seen_exchanges_.pop_front();

  GozarShuffleRes res;
  res.responder = self();
  res.entries =
      view_.random_subset_excluding(cfg_.base.shuffle_size, req.sender.id, rng());

  std::vector<GozarDescriptor> incoming = req.entries;
  incoming.push_back(req.sender);
  view_.merge_swapper(res.entries, incoming, self());

  if (req.sender.nat_type == net::NatType::Public) {
    network().send(self(), req.sender.id,
                   std::make_shared<GozarShuffleRes>(std::move(res)));
  } else if (physical_from != req.sender.id) {
    // Came through a relay; the same relay carries the response back (our
    // NAT mapping toward it is open because we ping it, and the
    // initiator's mapping is open because it sent the relayed request).
    auto rel = std::make_shared<GozarRelayedRes>();
    rel->final_target = req.sender.id;
    rel->inner = std::move(res);
    network().send(self(), physical_from, std::move(rel));
  } else {
    // Private sender that reached us directly (it holds a mapping toward
    // us from an earlier exchange); answer directly.
    network().send(self(), req.sender.id,
                   std::make_shared<GozarShuffleRes>(std::move(res)));
  }
}

void Gozar::handle_response(const GozarShuffleRes& res) {
  std::vector<GozarDescriptor> sent;
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->target == res.responder) {
      sent = std::move(it->sent);
      pending_.erase(it);
      break;
    }
  }
  view_.merge_swapper(sent, res.entries, self());
}

std::optional<pss::NodeDescriptor> Gozar::sample() {
  const auto d = view_.random_entry(rng());
  if (!d.has_value()) return std::nullopt;
  return pss::NodeDescriptor{d->id, d->nat_type, d->age};
}

std::vector<net::NodeId> Gozar::out_neighbors() const {
  std::vector<net::NodeId> out;
  out.reserve(view_.size());
  for (const auto& d : view_.entries()) out.push_back(d.id);
  return out;
}

std::vector<net::NodeId> Gozar::usable_neighbors(const AliveFn& alive) const {
  std::vector<net::NodeId> out;
  for (const auto& d : view_.entries()) {
    if (!alive(d.id)) continue;
    if (d.nat_type == net::NatType::Public) {
      out.push_back(d.id);
      continue;
    }
    // A private neighbour is reachable only through one of the relay
    // parents cached in our copy of its descriptor.
    const bool relay_alive = std::any_of(
        d.parents.begin(), d.parents.end(),
        [&](net::NodeId p) { return alive(p); });
    if (relay_alive) out.push_back(d.id);
  }
  return out;
}

std::vector<net::NodeId> Gozar::parents() const {
  std::vector<net::NodeId> out;
  out.reserve(parents_.size());
  for (const auto& p : parents_) out.push_back(p.id);
  return out;
}

}  // namespace croupier::baselines
