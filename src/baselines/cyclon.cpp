#include "baselines/cyclon.hpp"

#include <memory>

#include "common/assert.hpp"

namespace croupier::baselines {

void CyclonShuffleReq::encode(wire::Writer& w) const {
  w.u8(type());
  pss::encode(w, sender);
  pss::encode(w, entries);
}

CyclonShuffleReq CyclonShuffleReq::decode(wire::Reader& r) {
  CyclonShuffleReq m;
  (void)r.u8();
  m.sender = pss::decode_descriptor(r);
  m.entries = pss::decode_descriptors(r);
  return m;
}

void CyclonShuffleRes::encode(wire::Writer& w) const {
  w.u8(type());
  pss::encode(w, entries);
}

CyclonShuffleRes CyclonShuffleRes::decode(wire::Reader& r) {
  CyclonShuffleRes m;
  (void)r.u8();
  m.entries = pss::decode_descriptors(r);
  return m;
}

Cyclon::Cyclon(Context ctx, pss::PssConfig cfg)
    : PeerSampler(std::move(ctx)), cfg_(cfg), view_(cfg.view_size, ctx_.arena) {
  CROUPIER_ASSERT(cfg_.shuffle_size > 0 &&
                  cfg_.shuffle_size <= cfg_.view_size);
  view_.set_owner(self());
}

void Cyclon::init() {
  // Cyclon has no NAT awareness; its original deployment bootstraps from
  // any known members. The paper runs it on all-public networks, where
  // sample_any == sample_public.
  const auto seeds =
      bootstrap().sample_any(cfg_.bootstrap_fanout, self(), rng());
  for (net::NodeId id : seeds) {
    const net::NatType type = ctx_.network->attached(id)
                                  ? ctx_.network->type_of(id)
                                  : net::NatType::Public;
    view_.force_add(pss::NodeDescriptor{id, type, 0});
  }
}

void Cyclon::round() {
  view_.age_all();
  const auto target = view_.oldest();
  if (!target.has_value()) {
    init();
    return;
  }
  view_.remove(target->id);

  CyclonShuffleReq req;
  req.sender = pss::NodeDescriptor::self(self(), nat_type());
  req.entries = view_.random_subset(cfg_.shuffle_size - 1, rng());

  pending_.push_back(Pending{target->id, req.entries});
  while (pending_.size() > 8) pending_.pop_front();

  network().send(self(), target->id,
                 std::make_shared<CyclonShuffleReq>(std::move(req)));
}

void Cyclon::on_message(net::NodeId from, const net::Message& msg) {
  switch (msg.type()) {
    case kCyclonShuffleReq:
      handle_request(from, static_cast<const CyclonShuffleReq&>(msg));
      break;
    case kCyclonShuffleRes:
      handle_response(from, static_cast<const CyclonShuffleRes&>(msg));
      break;
    default:
      break;
  }
}

void Cyclon::handle_request(net::NodeId from, const CyclonShuffleReq& req) {
  CyclonShuffleRes res;
  res.entries = view_.random_subset_excluding(cfg_.shuffle_size, from, rng());

  std::vector<pss::NodeDescriptor> incoming = req.entries;
  incoming.push_back(req.sender);
  pss::merge_by_policy<pss::NodeDescriptor>(view_, cfg_.merge, res.entries,
                                            incoming, self());

  network().send(self(), from,
                 std::make_shared<CyclonShuffleRes>(std::move(res)));
}

void Cyclon::handle_response(net::NodeId from, const CyclonShuffleRes& res) {
  std::vector<pss::NodeDescriptor> sent;
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->target == from) {
      sent = std::move(it->sent);
      pending_.erase(it);
      break;
    }
  }
  pss::merge_by_policy<pss::NodeDescriptor>(view_, cfg_.merge, sent,
                                            res.entries, self());
}

std::optional<pss::NodeDescriptor> Cyclon::sample() {
  return view_.random_entry(rng());
}

std::vector<net::NodeId> Cyclon::out_neighbors() const {
  std::vector<net::NodeId> out;
  out.reserve(view_.size());
  for (const auto& d : view_.entries()) out.push_back(d.id);
  return out;
}

}  // namespace croupier::baselines
