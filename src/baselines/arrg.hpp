// ARRG (Drost et al., HPDC'07 [15]): the first NAT-aware PSS, included as
// an extension baseline to demonstrate the bias the paper describes in
// §II ("the open list biases the PSS, since the nodes in the open list
// are selected more frequently for gossiping").
//
// ARRG keeps a single view plus an *open list* of peers with whom an
// exchange succeeded in the past. It gossips with a random view member;
// when the exchange fails (here: no response by the next round, e.g. the
// target is behind a NAT), it falls back to a random open-list member.
// Successful partners enter the open list. No relaying, no NAT traversal —
// just retry-with-known-good, which over-represents reachable nodes.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "pss/protocol.hpp"
#include "pss/view.hpp"

namespace croupier::baselines {

constexpr std::uint8_t kArrgShuffleReq = 0x60;
constexpr std::uint8_t kArrgShuffleRes = 0x61;

struct ArrgShuffleReq final : net::Message {
  pss::NodeDescriptor sender;
  std::vector<pss::NodeDescriptor> entries;

  [[nodiscard]] std::uint8_t type() const override { return kArrgShuffleReq; }
  [[nodiscard]] const char* name() const override { return "arrg.shuffle_req"; }
  void encode(wire::Writer& w) const override;
  static ArrgShuffleReq decode(wire::Reader& r);
};

struct ArrgShuffleRes final : net::Message {
  std::vector<pss::NodeDescriptor> entries;

  [[nodiscard]] std::uint8_t type() const override { return kArrgShuffleRes; }
  [[nodiscard]] const char* name() const override { return "arrg.shuffle_res"; }
  void encode(wire::Writer& w) const override;
  static ArrgShuffleRes decode(wire::Reader& r);
};

struct ArrgConfig {
  pss::PssConfig base;
  std::size_t open_list_size = 20;
};

class Arrg final : public pss::PeerSampler {
 public:
  Arrg(Context ctx, ArrgConfig cfg);

  void init() override;
  void round() override;
  void on_message(net::NodeId from, const net::Message& msg) override;

  std::optional<pss::NodeDescriptor> sample() override;
  [[nodiscard]] std::vector<net::NodeId> out_neighbors() const override;

  [[nodiscard]] const std::deque<net::NodeId>& open_list() const {
    return open_list_;
  }
  [[nodiscard]] std::uint64_t fallback_count() const { return fallbacks_; }
  [[nodiscard]] const pss::PartialView<pss::NodeDescriptor>& view() const {
    return view_;
  }

 private:
  void start_exchange(net::NodeId target);
  void note_success(net::NodeId partner);

  ArrgConfig cfg_;
  pss::PartialView<pss::NodeDescriptor> view_;
  std::deque<net::NodeId> open_list_;  // bounded, most recent at the back

  struct Pending {
    net::NodeId target;
    std::vector<pss::NodeDescriptor> sent;
    bool answered = false;
  };
  std::optional<Pending> inflight_;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace croupier::baselines
