#include "core/croupier.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/assert.hpp"

namespace croupier::core {

void CroupierShuffleReq::encode(wire::Writer& w) const {
  w.u8(type());
  pss::encode(w, sender);
  pss::encode(w, pub);
  pss::encode(w, pri);
  core::encode(w, estimates);
}

CroupierShuffleReq CroupierShuffleReq::decode(wire::Reader& r) {
  CroupierShuffleReq m;
  (void)r.u8();  // type tag
  m.sender = pss::decode_descriptor(r);
  m.pub = pss::decode_descriptors(r);
  m.pri = pss::decode_descriptors(r);
  m.estimates = decode_estimates(r);
  return m;
}

void CroupierShuffleRes::encode(wire::Writer& w) const {
  w.u8(type());
  pss::encode(w, pub);
  pss::encode(w, pri);
  core::encode(w, estimates);
}

CroupierShuffleRes CroupierShuffleRes::decode(wire::Reader& r) {
  CroupierShuffleRes m;
  (void)r.u8();
  m.pub = pss::decode_descriptors(r);
  m.pri = pss::decode_descriptors(r);
  m.estimates = decode_estimates(r);
  return m;
}

Croupier::Croupier(Context ctx, CroupierConfig cfg)
    : PeerSampler(std::move(ctx)),
      cfg_(cfg),
      view_u_(cfg.base.view_size, ctx_.arena),
      view_v_(cfg.base.view_size, ctx_.arena),
      estimator_(self(), nat_type(), cfg.estimator) {
  CROUPIER_ASSERT(cfg_.base.shuffle_size > 0);
  CROUPIER_ASSERT(cfg_.base.shuffle_size <= cfg_.base.view_size);
  if (cfg_.sizing == ViewSizing::RatioProportional) {
    CROUPIER_ASSERT(cfg_.base.view_size >= 2 * cfg_.min_view_slots);
  }
  view_u_.set_owner(self());
  view_v_.set_owner(self());
}

void Croupier::init() {
  const auto seeds =
      bootstrap().sample_public(cfg_.base.bootstrap_fanout, self(), rng());
  for (net::NodeId id : seeds) {
    view_u_.force_add(pss::NodeDescriptor{id, net::NatType::Public, 0});
  }
}

void Croupier::apply_view_sizing() {
  if (cfg_.sizing != ViewSizing::RatioProportional) return;
  const std::size_t total = cfg_.base.view_size;
  const double est = estimator_.estimate();
  auto pub_slots = static_cast<std::size_t>(
      std::lround(est * static_cast<double>(total)));
  pub_slots = std::clamp(pub_slots, cfg_.min_view_slots,
                         total - cfg_.min_view_slots);
  view_u_.set_capacity(pub_slots);
  view_v_.set_capacity(total - pub_slots);
}

void Croupier::round() {
  // Algorithm 2, procedure Round.
  view_u_.age_all();
  view_v_.age_all();
  estimator_.begin_round();
  apply_view_sizing();

  // Tail policy over the public view: only croupiers are shuffle targets.
  const auto target = view_u_.oldest();
  if (!target.has_value()) {
    // Isolated (all public descriptors consumed without responses —
    // massive failure). Fall back to the bootstrap oracle, as a deployed
    // node would re-contact the bootstrap server.
    ++rebootstraps_;
    init();
    return;
  }
  view_u_.remove(target->id);

  // The shuffle budget (paper: 5 descriptors per exchange, same for all
  // compared systems) is split across the two views; the fresh
  // self-descriptor occupies one slot of its class (Algorithm 2, lines
  // 14-21).
  const std::size_t pub_budget = (cfg_.base.shuffle_size + 1) / 2;
  const std::size_t pri_budget = cfg_.base.shuffle_size - pub_budget;
  const bool is_public = nat_type() == net::NatType::Public;
  CroupierShuffleReq req;
  req.sender = self_descriptor();
  req.pub =
      view_u_.random_subset(is_public ? pub_budget - 1 : pub_budget, rng());
  req.pri = view_v_.random_subset(
      is_public ? pri_budget : (pri_budget > 0 ? pri_budget - 1 : 0), rng());
  req.estimates = estimator_.share(rng());

  pending_.push_back(PendingShuffle{target->id, req.pub, req.pri});
  while (pending_.size() > 8) pending_.pop_front();

  network().send(self(), target->id,
                 std::make_shared<CroupierShuffleReq>(std::move(req)));
}

void Croupier::on_message(net::NodeId from, const net::Message& msg) {
  switch (msg.type()) {
    case kCroupierShuffleReq:
      handle_request(from, static_cast<const CroupierShuffleReq&>(msg));
      break;
    case kCroupierShuffleRes:
      handle_response(from, static_cast<const CroupierShuffleRes&>(msg));
      break;
    default:
      // Unknown message: ignore, like a UDP service would.
      break;
  }
}

void Croupier::handle_request(net::NodeId from,
                              const CroupierShuffleReq& req) {
  if (nat_type() != net::NatType::Public) {
    // Shuffle requests are addressed to public-view descriptors only, so
    // this cannot happen with truthful NAT identification; tolerate it
    // (drop) rather than corrupt the estimator.
    return;
  }
  // Algorithm 2 lines 26-30: count the hit by the sender's class.
  estimator_.count_request(req.sender.nat_type);

  const std::size_t pub_budget = (cfg_.base.shuffle_size + 1) / 2;
  const std::size_t pri_budget = cfg_.base.shuffle_size - pub_budget;
  CroupierShuffleRes res;
  res.pub = view_u_.random_subset_excluding(pub_budget, from, rng());
  res.pri = view_v_.random_subset_excluding(pri_budget, from, rng());
  res.estimates = estimator_.share(rng());

  // Merge the received subsets (sender's self-descriptor joins its class).
  std::vector<pss::NodeDescriptor> in_pub = req.pub;
  std::vector<pss::NodeDescriptor> in_pri = req.pri;
  if (req.sender.nat_type == net::NatType::Public) {
    in_pub.push_back(req.sender);
  } else {
    in_pri.push_back(req.sender);
  }
  pss::merge_by_policy<pss::NodeDescriptor>(view_u_, cfg_.base.merge,
                                            res.pub, in_pub, self());
  pss::merge_by_policy<pss::NodeDescriptor>(view_v_, cfg_.base.merge,
                                            res.pri, in_pri, self());
  estimator_.merge(req.estimates);

  network().send(self(), from,
                 std::make_shared<CroupierShuffleRes>(std::move(res)));
}

void Croupier::handle_response(net::NodeId from,
                               const CroupierShuffleRes& res) {
  // Locate what we sent to `from` (normally the most recent entry).
  std::vector<pss::NodeDescriptor> sent_pub;
  std::vector<pss::NodeDescriptor> sent_pri;
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->target == from) {
      sent_pub = std::move(it->sent_pub);
      sent_pri = std::move(it->sent_pri);
      pending_.erase(it);
      break;
    }
  }
  pss::merge_by_policy<pss::NodeDescriptor>(view_u_, cfg_.base.merge,
                                            sent_pub, res.pub, self());
  pss::merge_by_policy<pss::NodeDescriptor>(view_v_, cfg_.base.merge,
                                            sent_pri, res.pri, self());
  estimator_.merge(res.estimates);
}

std::optional<pss::NodeDescriptor> Croupier::sample() {
  // Algorithm 3, generateRandomSample.
  const double choice = rng().next_double();
  if (choice < estimator_.estimate()) {
    if (auto d = view_u_.random_entry(rng()); d.has_value()) return d;
    return view_v_.random_entry(rng());
  }
  if (auto d = view_v_.random_entry(rng()); d.has_value()) return d;
  return view_u_.random_entry(rng());
}

std::vector<net::NodeId> Croupier::out_neighbors() const {
  std::vector<net::NodeId> out;
  out.reserve(view_u_.size() + view_v_.size());
  for (const auto& d : view_u_.entries()) out.push_back(d.id);
  for (const auto& d : view_v_.entries()) out.push_back(d.id);
  return out;
}

std::vector<net::NodeId> Croupier::usable_neighbors(
    const AliveFn& alive) const {
  // Croupier descriptors carry no traversal state that can go stale: a
  // public-view edge works iff the target survives, and a private-view
  // edge stays meaningful iff the target survives, because a live private
  // node keeps re-anchoring itself through whatever croupiers remain (it
  // initiates all of its exchanges). Contrast Gozar/Nylon, where an edge
  // to a live private node dies with the relay/RVP state cached in the
  // descriptor — the asymmetry behind paper fig. 7b.
  std::vector<net::NodeId> out;
  for (const auto& d : view_u_.entries()) {
    if (alive(d.id)) out.push_back(d.id);
  }
  for (const auto& d : view_v_.entries()) {
    if (alive(d.id)) out.push_back(d.id);
  }
  return out;
}

}  // namespace croupier::core
