#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace croupier::core {

namespace {

// Quantizes an exact hit count pair into two bytes, scaling proportionally
// so the encoded ratio matches the exact one to ~1/255.
std::pair<std::uint8_t, std::uint8_t> quantize(std::uint32_t pub,
                                               std::uint32_t priv) {
  const std::uint32_t largest = std::max(pub, priv);
  if (largest <= 0xff) {
    return {static_cast<std::uint8_t>(pub), static_cast<std::uint8_t>(priv)};
  }
  const double scale = 255.0 / static_cast<double>(largest);
  auto squeeze = [scale](std::uint32_t v) {
    const auto scaled =
        static_cast<std::uint32_t>(std::lround(static_cast<double>(v) * scale));
    // Never round a nonzero count down to zero: that would erase the
    // minority class entirely from the encoded ratio.
    return static_cast<std::uint8_t>(
        std::clamp<std::uint32_t>(v > 0 ? std::max(scaled, 1u) : 0u, 0u, 255u));
  };
  return {squeeze(pub), squeeze(priv)};
}

}  // namespace

void encode(wire::Writer& w, const EstimateEntry& e) {
  // Paper §VI carries 2 B origin ids, enough for every paper-scale
  // experiment. Worlds past 64Ki publics (the fig3 --mega sweep) escape
  // through the 0xffff sentinel to a 4 B id; origins below the sentinel
  // encode byte-identically to the fixed 2 B format.
  const auto [pub, priv] = quantize(e.pub_hits, e.priv_hits);
  if (e.origin < 0xffff) {
    w.u16(static_cast<std::uint16_t>(e.origin));
  } else {
    w.u16(0xffff);
    w.u32(e.origin);
  }
  w.u8(pub);
  w.u8(priv);
  w.u8(static_cast<std::uint8_t>(std::min<std::uint16_t>(e.age, 0xff)));
}

EstimateEntry decode_estimate(wire::Reader& r) {
  EstimateEntry e;
  e.origin = r.u16();
  if (e.origin == 0xffff) e.origin = r.u32();
  e.pub_hits = r.u8();
  e.priv_hits = r.u8();
  e.age = r.u8();
  return e;
}

void encode(wire::Writer& w, const std::vector<EstimateEntry>& v) {
  w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(v.size(), 0xff)));
  for (const auto& e : v) encode(w, e);
}

std::vector<EstimateEntry> decode_estimates(wire::Reader& r) {
  const std::size_t n = r.u8();
  std::vector<EstimateEntry> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    out.push_back(decode_estimate(r));
  }
  return out;
}

RatioEstimator::RatioEstimator(net::NodeId self, net::NatType type,
                               EstimatorConfig cfg)
    : self_(self), type_(type), cfg_(cfg) {
  CROUPIER_ASSERT(cfg_.local_history > 0);
  CROUPIER_ASSERT(cfg_.neighbour_history > 0);
  CROUPIER_ASSERT(cfg_.share_limit > 0);
}

void RatioEstimator::begin_round() {
  // Age the neighbour history and expire entries older than γ.
  for (auto& e : cache_) {
    if (e.age < 0xffff) ++e.age;
  }
  std::erase_if(cache_, [this](const EstimateEntry& e) {
    return e.age > cfg_.neighbour_history;
  });

  // Roll the finished round's counters into the local history window
  // (Algorithm 2 lines 9-11) and keep the windowed sums incremental.
  history_.emplace_back(round_pub_hits_, round_priv_hits_);
  window_pub_ += round_pub_hits_;
  window_priv_ += round_priv_hits_;
  round_pub_hits_ = 0;
  round_priv_hits_ = 0;
  while (history_.size() > cfg_.local_history) {
    window_pub_ -= history_.front().first;
    window_priv_ -= history_.front().second;
    history_.pop_front();
  }
}

void RatioEstimator::count_request(net::NatType sender_type) {
  if (sender_type == net::NatType::Public) {
    ++round_pub_hits_;
  } else {
    ++round_priv_hits_;
  }
}

void RatioEstimator::merge(std::span<const EstimateEntry> entries) {
  for (const auto& incoming : entries) {
    if (incoming.origin == self_) continue;  // own estimate is kept locally
    if (incoming.pub_hits == 0 && incoming.priv_hits == 0) continue;
    if (incoming.age > cfg_.neighbour_history) continue;
    auto it = std::find_if(cache_.begin(), cache_.end(),
                           [&](const EstimateEntry& e) {
                             return e.origin == incoming.origin;
                           });
    if (it == cache_.end()) {
      cache_.push_back(incoming);
    } else if (incoming.age < it->age) {
      *it = incoming;
    }
  }
}

std::optional<EstimateEntry> RatioEstimator::own_entry() const {
  if (type_ != net::NatType::Public) return std::nullopt;
  if (window_pub_ + window_priv_ == 0) return std::nullopt;
  return EstimateEntry{self_, static_cast<std::uint32_t>(window_pub_),
                       static_cast<std::uint32_t>(window_priv_), 0};
}

std::vector<EstimateEntry> RatioEstimator::share(sim::RngStream& rng) const {
  const auto own = own_entry();
  const std::size_t from_cache =
      own.has_value() ? cfg_.share_limit - 1 : cfg_.share_limit;
  std::vector<EstimateEntry> out =
      rng.sample(std::span<const EstimateEntry>(cache_), from_cache);
  if (own.has_value()) out.push_back(*own);
  return out;
}

double RatioEstimator::estimate() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& e : cache_) {
    sum += e.ratio();
    ++n;
  }
  if (const auto own = local_estimate(); own.has_value()) {
    sum += *own;
    ++n;
  }
  if (n == 0) return 0.5;  // no information yet
  return sum / static_cast<double>(n);
}

std::optional<double> RatioEstimator::local_estimate() const {
  const auto own = own_entry();
  if (!own.has_value()) return std::nullopt;
  return own->ratio();
}

}  // namespace croupier::core
