// Distributed public/private ratio estimation (paper §VI, Algorithm 3 and
// equations (1)-(9)).
//
// Croupiers (public nodes) count the shuffle requests they receive from
// public senders (c_u) and private senders (c_v) each round. Summed over a
// sliding window of the last α rounds (the *local history*), the counts
// give the node's local estimate E_i = C_ui / (C_ui + C_vi) — an unbiased
// sample of ω = |U| / (|U| + |V|) because every node, public or private,
// sends exactly one shuffle request per round to a uniformly random public
// node. Local estimates are disseminated piggy-backed on shuffle traffic;
// each node caches the most recent estimate per origin (the *neighbour
// history* M_i), drops entries older than γ rounds, and averages:
//   public node:  Ê(ω) = (Σ_{m∈M} E_m + E_i) / (|M| + 1)     (eq. 8)
//   private node: Ê(ω) =  Σ_{m∈M} E_m / |M|                  (eq. 9)
//
// Wire format per shared entry is 5 bytes (paper §VI: 2 B origin id, 1 B
// public hits, 1 B private hits, 1 B age); origins past 16 bits —
// million-node worlds — escape to 4 B through the 0xffff sentinel
// without perturbing a single byte of smaller worlds. Internal counts
// are exact;
// encoding quantizes proportionally into the byte range, which preserves
// the ratio to ~1/255 — noise that averages out across M.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/address.hpp"
#include "sim/rng.hpp"
#include "wire/wire.hpp"

namespace croupier::core {

/// One node's local estimate as it travels between nodes.
struct EstimateEntry {
  net::NodeId origin = net::kNilNode;
  std::uint32_t pub_hits = 0;
  std::uint32_t priv_hits = 0;
  std::uint16_t age = 0;  // rounds since the origin computed it

  /// The ratio this entry encodes: E_i of equation (6).
  [[nodiscard]] double ratio() const {
    const auto total = pub_hits + priv_hits;
    return total == 0 ? 0.0 : static_cast<double>(pub_hits) / total;
  }

  friend bool operator==(const EstimateEntry&, const EstimateEntry&) = default;
};

/// Bytes one estimate entry occupies on the wire (paper §VI).
constexpr std::size_t kEstimateWireBytes = 5;

void encode(wire::Writer& w, const EstimateEntry& e);
EstimateEntry decode_estimate(wire::Reader& r);
void encode(wire::Writer& w, const std::vector<EstimateEntry>& v);
std::vector<EstimateEntry> decode_estimates(wire::Reader& r);

struct EstimatorConfig {
  std::size_t local_history = 25;      // α: rounds of own hit counts kept
  std::size_t neighbour_history = 50;  // γ: max age of cached estimates
  std::size_t share_limit = 10;        // entries piggy-backed per message
};

class RatioEstimator {
 public:
  RatioEstimator(net::NodeId self, net::NatType type, EstimatorConfig cfg);

  /// Advances one gossip round (paper Algorithm 2, lines 3-11): ages and
  /// expires cached estimates, recomputes the local estimate from the
  /// history window, then rolls the current round's hit counters into the
  /// history.
  void begin_round();

  /// Records an incoming shuffle request from a sender of the given type
  /// (Algorithm 2, lines 26-30). Only meaningful on public nodes.
  void count_request(net::NatType sender_type);

  /// Integrates estimates received in a shuffle message, retaining the
  /// most recent entry per origin (paper: "when two estimations for the
  /// same node are available, the older is replaced by the newer").
  void merge(std::span<const EstimateEntry> entries);

  /// The bounded random subset of cached estimates to piggy-back on an
  /// outgoing shuffle message; includes this node's own local estimate
  /// when one exists (public nodes). At most `share_limit` entries.
  [[nodiscard]] std::vector<EstimateEntry> share(sim::RngStream& rng) const;

  /// Ê(ω) per equations (8)/(9). Falls back to 0.5 when no information is
  /// available yet (fresh node, first rounds).
  [[nodiscard]] double estimate() const;

  /// E_i: this node's own window estimate, if it has received any shuffle
  /// requests within the window (public nodes only).
  [[nodiscard]] std::optional<double> local_estimate() const;

  /// Introspection (tests, diagnostics).
  [[nodiscard]] std::size_t cached_count() const { return cache_.size(); }
  [[nodiscard]] const std::vector<EstimateEntry>& cached() const {
    return cache_;
  }
  [[nodiscard]] const EstimatorConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] std::optional<EstimateEntry> own_entry() const;

  net::NodeId self_;
  net::NatType type_;
  EstimatorConfig cfg_;

  // Hit counters for the in-progress round (c_u, c_v).
  std::uint32_t round_pub_hits_ = 0;
  std::uint32_t round_priv_hits_ = 0;
  // Per-round history, newest at the back, bounded to α entries (C_u, C_v).
  std::deque<std::pair<std::uint32_t, std::uint32_t>> history_;
  // Windowed sums kept incrementally.
  std::uint64_t window_pub_ = 0;
  std::uint64_t window_priv_ = 0;
  // Cached estimates from other nodes (M_i); never contains self.
  std::vector<EstimateEntry> cache_;
};

}  // namespace croupier::core
