// Croupier: the paper's NAT-aware peer sampling protocol (§VI, Algorithm 2).
//
// Every node keeps two bounded views — public and private descriptors —
// and once per round sends a shuffle request to the *oldest public*
// descriptor (tail policy). Only public nodes ("croupiers") receive
// requests; they shuffle both views on the sender's behalf and reply.
// Because a private node is never the target of an exchange, no relaying
// or hole-punching is ever needed: its NAT admits the shuffle response
// simply because it sent the request.
//
// Uniform samples are drawn across the two views using the distributed
// public/private ratio estimator (core/estimator.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/estimator.hpp"
#include "pss/protocol.hpp"
#include "pss/view.hpp"

namespace croupier::core {

/// How the capacities of the two views are set.
enum class ViewSizing : std::uint8_t {
  /// Both views have capacity PssConfig::view_size. Simple; total degree
  /// is 2x view_size.
  FixedPerView = 0,
  /// The two views share a total budget of PssConfig::view_size slots,
  /// split according to the current ratio estimate (minimum 2 each). This
  /// keeps Croupier's out-degree equal to the single-view systems', making
  /// the in-degree comparison of paper fig. 6(a) like-for-like.
  RatioProportional = 1,
};

struct CroupierConfig {
  pss::PssConfig base;
  EstimatorConfig estimator;
  ViewSizing sizing = ViewSizing::FixedPerView;
  /// Lower bound per view under RatioProportional sizing.
  std::size_t min_view_slots = 2;
};

/// Message type tags (first wire byte).
constexpr std::uint8_t kCroupierShuffleReq = 0x10;
constexpr std::uint8_t kCroupierShuffleRes = 0x11;

struct CroupierShuffleReq final : net::Message {
  pss::NodeDescriptor sender;             // fresh self-descriptor of p
  std::vector<pss::NodeDescriptor> pub;   // random subset of view_u
  std::vector<pss::NodeDescriptor> pri;   // random subset of view_v
  std::vector<EstimateEntry> estimates;   // bounded subset of M_p (+E_p)

  [[nodiscard]] std::uint8_t type() const override {
    return kCroupierShuffleReq;
  }
  [[nodiscard]] const char* name() const override {
    return "croupier.shuffle_req";
  }
  void encode(wire::Writer& w) const override;
  static CroupierShuffleReq decode(wire::Reader& r);
};

struct CroupierShuffleRes final : net::Message {
  std::vector<pss::NodeDescriptor> pub;
  std::vector<pss::NodeDescriptor> pri;
  std::vector<EstimateEntry> estimates;

  [[nodiscard]] std::uint8_t type() const override {
    return kCroupierShuffleRes;
  }
  [[nodiscard]] const char* name() const override {
    return "croupier.shuffle_res";
  }
  void encode(wire::Writer& w) const override;
  static CroupierShuffleRes decode(wire::Reader& r);
};

class Croupier final : public pss::PeerSampler {
 public:
  Croupier(Context ctx, CroupierConfig cfg);

  void init() override;
  void round() override;
  void on_message(net::NodeId from, const net::Message& msg) override;

  std::optional<pss::NodeDescriptor> sample() override;
  [[nodiscard]] std::vector<net::NodeId> out_neighbors() const override;
  [[nodiscard]] std::vector<net::NodeId> usable_neighbors(
      const AliveFn& alive) const override;

  /// The node's current Ê(ω) (equations 8/9) — what the experiments track.
  [[nodiscard]] std::optional<double> ratio_estimate() const override {
    return estimator_.estimate();
  }

  [[nodiscard]] const pss::PartialView<pss::NodeDescriptor>& public_view()
      const {
    return view_u_;
  }
  [[nodiscard]] const pss::PartialView<pss::NodeDescriptor>& private_view()
      const {
    return view_v_;
  }
  [[nodiscard]] const RatioEstimator& estimator() const { return estimator_; }

  /// Rounds in which the public view ran dry and the node re-bootstrapped
  /// (diagnostic: should stay 0 in healthy runs).
  [[nodiscard]] std::uint64_t rebootstrap_count() const {
    return rebootstraps_;
  }

 private:
  void handle_request(net::NodeId from, const CroupierShuffleReq& req);
  void handle_response(net::NodeId from, const CroupierShuffleRes& res);
  void apply_view_sizing();
  [[nodiscard]] pss::NodeDescriptor self_descriptor() const {
    return pss::NodeDescriptor::self(self(), nat_type());
  }

  CroupierConfig cfg_;
  pss::PartialView<pss::NodeDescriptor> view_u_;  // public view
  pss::PartialView<pss::NodeDescriptor> view_v_;  // private view
  RatioEstimator estimator_;

  // Subsets shipped in still-unanswered requests, keyed by target; needed
  // for the swapper merge when the response arrives. Bounded FIFO.
  struct PendingShuffle {
    net::NodeId target;
    std::vector<pss::NodeDescriptor> sent_pub;
    std::vector<pss::NodeDescriptor> sent_pri;
  };
  std::deque<PendingShuffle> pending_;
  std::uint64_t rebootstraps_ = 0;
};

}  // namespace croupier::core
