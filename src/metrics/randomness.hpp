// Statistical randomness audit of a peer-sampling overlay.
//
// Fig. 6 eyeballs in-degree histograms in the honest case; this module
// turns sampler randomness into numbers a test can gate on (PeerSwap,
// arXiv:2408.03829, shows randomness claims are most fragile under
// adversarial dynamics — and Diaconis-style test batteries are how
// shuffles that "look random" get caught). Three estimators, each with a
// closed-form expectation under uniform sampling:
//
//  - in-degree chi-square: goodness-of-fit of cumulative per-node
//    in-degree counts against the uniform expectation. Reported as the
//    normalized statistic z = (chi2 - dof) / sqrt(2*dof), which is
//    approximately N(0,1) for large dof — |z| <~ 3 passes, a hub-forming
//    or eclipse-biased sampler drives z far positive;
//  - lag-1 repeat rate: fraction of a node's current out-neighbours that
//    already appeared in its previous observation, vs the expectation
//    for a fresh uniform re-sample (view / (n-1)). The ratio
//    observed/expected is ~1 for an independent sampler, (n-1)/view for
//    a frozen (periodic) one;
//  - public-selection bias: fraction of view entries pointing at public
//    nodes vs the true public ratio omega. ratio ~1 = class-unbiased.
//
// All accumulation is integer (counts and exact products); doubles enter
// only in the final closed-form divisions, so the output is bit-stable
// regardless of node count or iteration batching.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "net/address.hpp"
#include "net/nat.hpp"

namespace croupier::metrics {

/// Chi-square goodness-of-fit of observed counts against the uniform
/// expectation (every cell equally likely).
struct ChiSquareFit {
  double statistic = 0.0;  // chi^2
  double dof = 0.0;        // cells - 1
  double z = 0.0;          // (chi2 - dof) / sqrt(2*dof); ~N(0,1)
};

/// Fits `counts` (one observed tally per cell) against uniform. Returns
/// zeros for fewer than two cells or an all-zero tally.
[[nodiscard]] ChiSquareFit chi_square_uniform(
    std::span<const std::uint64_t> counts);

/// One audit snapshot.
struct RandomnessPoint {
  double t_seconds = 0.0;

  // In-degree chi-square over cumulative counts.
  double chi2 = 0.0;
  double chi2_z = 0.0;

  // Lag-1 temporal independence.
  double repeat_observed = 0.0;  // overlap entries / current entries
  double repeat_expected = 0.0;  // uniform re-sample expectation
  double repeat_ratio = 0.0;     // observed / expected; ~1 = independent

  // Public-vs-private selection bias.
  double public_fraction = 0.0;  // public entries / total entries
  double public_expected = 0.0;  // true ratio omega
  double bias_ratio = 0.0;       // fraction / omega; ~1 = unbiased

  std::size_t nodes = 0;           // audited nodes this tick
  std::uint64_t edges_observed = 0;  // cumulative in-degree observations
};

/// Accumulating auditor: feed it one adjacency snapshot per tick (the
/// node's out-neighbour lists in ascending-id order, as the World
/// recorders produce them) and it maintains the cross-tick state the
/// estimators need — cumulative per-node in-degree and each node's
/// previous neighbour set. Nodes absent from a snapshot (dead or not yet
/// gossiping) are dropped from both: their history describes an overlay
/// member that no longer exists.
class RandomnessAuditor {
 public:
  using Adjacency =
      std::vector<std::pair<net::NodeId, std::vector<net::NodeId>>>;
  using ClassMap = std::vector<std::pair<net::NodeId, net::NatType>>;

  /// Observes one snapshot. `classes` gives the NAT class per node
  /// (targets outside it count as private — they left the class map by
  /// dying, and a dead target is certainly not a reachable public);
  /// `true_ratio` is omega at snapshot time.
  RandomnessPoint observe(const Adjacency& adjacency, const ClassMap& classes,
                          double true_ratio, double t_seconds);

  /// Drops all cross-tick state (fresh audit epoch).
  void reset();

  /// Cumulative in-degree observations so far (after drops).
  [[nodiscard]] std::uint64_t edges_observed() const {
    return edges_observed_;
  }

 private:
  // Ordered by node id so every iteration (chi-square accumulation,
  // pruning) is deterministic without sorting.
  std::map<net::NodeId, std::uint64_t> indegree_;
  std::map<net::NodeId, std::vector<net::NodeId>> prev_;  // sorted lists
  std::uint64_t edges_observed_ = 0;
};

}  // namespace croupier::metrics
