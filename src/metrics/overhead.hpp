// Protocol-overhead summarization (paper fig. 7a: average load per node in
// bytes/second, split by node class).
#pragma once

#include <span>
#include <utility>

#include "net/address.hpp"
#include "net/traffic.hpp"
#include "sim/time.hpp"

namespace croupier::metrics {

struct ClassLoad {
  double public_bytes_per_sec = 0.0;
  double private_bytes_per_sec = 0.0;
  std::size_t public_nodes = 0;
  std::size_t private_nodes = 0;
};

/// Averages per-node load (sent + received bytes, headers included) over a
/// measurement window, separately for public and private nodes. Nodes in
/// `classes` that produced no traffic still count toward the average.
/// `classes` should be ordered (World::class_map sorts by node id) so the
/// float accumulation order is deterministic.
ClassLoad summarize_load(
    const net::TrafficMeter& meter,
    std::span<const std::pair<net::NodeId, net::NatType>> classes,
    sim::Duration window);

}  // namespace croupier::metrics
