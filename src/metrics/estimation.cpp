#include "metrics/estimation.hpp"

#include <algorithm>
#include <cmath>

namespace croupier::metrics {

ErrorSample estimation_errors(std::span<const double> estimates,
                              double truth) {
  ErrorSample s;
  s.truth = truth;
  s.node_count = estimates.size();
  if (estimates.empty()) return s;
  double sum = 0.0;
  double worst = 0.0;
  for (double e : estimates) {
    const double err = std::abs(truth - e);
    // detlint:allow(float-accum) `estimates` arrives in ascending-node-id
    // order (World::ratio_estimates walks sorted_ids) — order is fixed.
    sum += err;
    worst = std::max(worst, err);
  }
  s.avg_error = sum / static_cast<double>(estimates.size());
  s.max_error = worst;
  return s;
}

}  // namespace croupier::metrics
