#include "metrics/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/assert.hpp"

namespace croupier::metrics {

void ComponentTracker::reset() {
  index_.clear();
  parent_.clear();
  size_.clear();
  largest_ = 0;
}

std::uint32_t ComponentTracker::intern(net::NodeId a) {
  const auto [it, inserted] =
      index_.emplace(a, static_cast<std::uint32_t>(parent_.size()));
  if (inserted) {
    parent_.push_back(it->second);
    size_.push_back(1);
    largest_ = std::max<std::size_t>(largest_, 1);
  }
  return it->second;
}

std::uint32_t ComponentTracker::find(std::uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

void ComponentTracker::add_node(net::NodeId a) { intern(a); }

void ComponentTracker::add_edge(net::NodeId a, net::NodeId b) {
  std::uint32_t ra = find(intern(a));
  std::uint32_t rb = find(intern(b));
  if (ra == rb) return;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  largest_ = std::max<std::size_t>(largest_, size_[ra]);
}

void StreamingGraphEstimator::reset_accumulators() {
  components_.reset();
  indeg_hits_.clear();
  indeg_probes_ = 0;
  edge_samples_ = 0;
  edge_samples_sq_ = 0;
}

net::NodeId StreamingGraphEstimator::draw_vertex(
    std::span<const net::NodeId> candidates, const VertexFn& is_vertex,
    sim::RngStream& rng) {
  // Bounded rejection: in natid-off worlds every candidate is a vertex
  // and the first draw lands; a natid-heavy join wave just costs a few
  // retries. 32 misses means vertices are so sparse the tick should be
  // skipped rather than spun on.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const net::NodeId id = candidates[rng.index(candidates.size())];
    if (is_vertex(id)) return id;
  }
  return net::kNilNode;
}

StreamingGraphStats StreamingGraphEstimator::tick(
    std::span<const net::NodeId> candidates, std::size_t population,
    const NeighborFn& neighbors, const VertexFn& is_vertex,
    sim::RngStream& rng) {
  StreamingGraphStats out;
  out.population = population;
  if (candidates.empty() || population == 0) return out;

  std::vector<net::NodeId> nbrs;
  auto fetch_filtered = [&](net::NodeId u,
                            std::vector<net::NodeId>& into) -> bool {
    if (!neighbors(u, into)) return false;
    // Match OverlayGraph::build: drop self-loops, edges to non-vertices,
    // and duplicate edges.
    std::erase_if(into,
                  [&](net::NodeId v) { return v == u || !is_vertex(v); });
    std::sort(into.begin(), into.end());
    into.erase(std::unique(into.begin(), into.end()), into.end());
    return true;
  };

  // --- Degree, in-degree, and component sampling (accumulating). ---
  std::uint64_t tick_degree_sum = 0;
  std::size_t tick_degree_samples = 0;
  for (std::size_t k = 0; k < cfg_.degree_probes; ++k) {
    const net::NodeId u = draw_vertex(candidates, is_vertex, rng);
    if (u == net::kNilNode) break;
    if (!fetch_filtered(u, nbrs)) continue;
    tick_degree_sum += nbrs.size();
    ++tick_degree_samples;
    ++indeg_probes_;
    components_.add_node(u);
    for (const net::NodeId v : nbrs) {
      components_.add_edge(u, v);
      auto& hits = indeg_hits_[v];
      // Keep sum and sum-of-squares incremental: (h+1)^2 - h^2 = 2h+1.
      edge_samples_sq_ += 2 * hits + 1;
      ++hits;
      ++edge_samples_;
    }
  }
  if (tick_degree_samples > 0) {
    out.mean_out_degree = static_cast<double>(tick_degree_sum) /
                          static_cast<double>(tick_degree_samples);
  }
  out.edge_samples = edge_samples_;
  out.component_nodes = components_.node_count();
  out.largest_component_fraction = components_.largest_fraction();

  // In-degree concentration: hits_t ~ Binomial(probes, indeg_t / N), so
  // the population variance of the hit counts overshoots the in-degree
  // variance by roughly the Poisson term (the mean). Subtracting it
  // de-noises the CV estimate; the max(0, ...) clamp absorbs the small
  // negative excursions of a balanced overlay.
  if (edge_samples_ > 0 && population > 0) {
    const double n = static_cast<double>(population);
    const double mean = static_cast<double>(edge_samples_) / n;
    const double var =
        static_cast<double>(edge_samples_sq_) / n - mean * mean;
    const double corrected = std::max(0.0, var - mean);
    out.in_degree_cv = mean > 0.0 ? std::sqrt(corrected) / mean : 0.0;
  }

  // --- Clustering (per tick). ---
  double cc_sum = 0.0;
  std::size_t cc_samples = 0;
  std::vector<net::NodeId> hood;
  std::vector<std::vector<net::NodeId>> hood_out;
  for (std::size_t k = 0; k < cfg_.cluster_probes; ++k) {
    const net::NodeId u = draw_vertex(candidates, is_vertex, rng);
    if (u == net::kNilNode) break;
    if (!fetch_filtered(u, hood)) continue;
    ++cc_samples;
    if (hood.size() < 2) continue;  // local coefficient defined as 0
    hood_out.assign(hood.size(), {});
    for (std::size_t i = 0; i < hood.size(); ++i) {
      if (neighbors(hood[i], hood_out[i])) {
        std::sort(hood_out[i].begin(), hood_out[i].end());
      }
    }
    const auto linked = [&](std::size_t i, std::size_t j) {
      return std::binary_search(hood_out[i].begin(), hood_out[i].end(),
                                hood[j]) ||
             std::binary_search(hood_out[j].begin(), hood_out[j].end(),
                                hood[i]);
    };
    std::size_t links = 0;
    for (std::size_t i = 0; i < hood.size(); ++i) {
      for (std::size_t j = i + 1; j < hood.size(); ++j) {
        if (linked(i, j)) ++links;
      }
    }
    const double possible = static_cast<double>(hood.size()) *
                            (static_cast<double>(hood.size()) - 1.0) / 2.0;
    // detlint:allow(float-accum) probe order is drawn from the seeded
    // RngStream, so the summation order is fixed by the seed.
    cc_sum += static_cast<double>(links) / possible;
  }
  if (cc_samples > 0) {
    out.clustering_coefficient = cc_sum / static_cast<double>(cc_samples);
  }

  // --- Path length (per tick). ---
  std::uint64_t total_hops = 0;
  std::uint64_t found_pairs = 0;
  std::uint64_t unreachable_pairs = 0;
  std::unordered_map<net::NodeId, std::uint32_t> dist;
  std::deque<net::NodeId> frontier;
  std::vector<net::NodeId> targets;
  for (std::size_t s = 0; s < cfg_.path_sources; ++s) {
    const net::NodeId src = draw_vertex(candidates, is_vertex, rng);
    if (src == net::kNilNode) break;

    targets.clear();
    for (std::size_t t = 0; t < cfg_.path_targets; ++t) {
      const net::NodeId cand = draw_vertex(candidates, is_vertex, rng);
      if (cand == net::kNilNode) break;
      if (cand == src ||
          std::find(targets.begin(), targets.end(), cand) != targets.end()) {
        continue;  // fewer targets this source; no bias, just fewer pairs
      }
      targets.push_back(cand);
    }
    if (targets.empty()) continue;

    // BFS on the implicit graph. Distances are exact for every pair it
    // resolves; the budget only censors pairs (they are dropped from
    // both estimates, never misreported as unreachable).
    dist.clear();
    frontier.clear();
    dist.emplace(src, 0);
    frontier.push_back(src);
    std::size_t remaining = targets.size();
    std::size_t expanded = 0;
    bool truncated = false;
    while (!frontier.empty() && remaining > 0) {
      if (cfg_.bfs_budget > 0 && expanded >= cfg_.bfs_budget) {
        truncated = true;
        break;
      }
      const net::NodeId u = frontier.front();
      frontier.pop_front();
      ++expanded;
      if (!neighbors(u, nbrs)) continue;  // died mid-walk: skip
      const std::uint32_t du = dist.at(u);
      for (const net::NodeId v : nbrs) {
        if (v == u || !is_vertex(v)) continue;
        if (!dist.emplace(v, du + 1).second) continue;
        if (std::find(targets.begin(), targets.end(), v) != targets.end()) {
          total_hops += du + 1;
          ++found_pairs;
          --remaining;
        }
        frontier.push_back(v);
      }
    }
    if (truncated) {
      ++out.bfs_truncated;
    } else {
      // Frontier exhausted: the unresolved targets are truly
      // unreachable from this source.
      unreachable_pairs += remaining;
    }
  }
  out.path_pairs = static_cast<std::size_t>(found_pairs);
  if (found_pairs > 0) {
    out.avg_path_length =
        static_cast<double>(total_hops) / static_cast<double>(found_pairs);
  }
  if (found_pairs + unreachable_pairs > 0) {
    out.unreachable_fraction =
        static_cast<double>(unreachable_pairs) /
        static_cast<double>(found_pairs + unreachable_pairs);
  }
  return out;
}

}  // namespace croupier::metrics
