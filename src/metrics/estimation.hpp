// Estimation-error metrics (paper §VII-B, equations (10)-(13)).
//
// For a set of per-node ratio estimates and the true ratio ω:
//  - avg error  (eq. 12/13): mean of |ω − Ê_n(ω)| over nodes;
//  - max error  (eq. 10/11): the Kolmogorov-Smirnov-style worst case,
//    max_n |ω − Ê_n(ω)|.
#pragma once

#include <span>
#include <vector>

namespace croupier::metrics {

struct ErrorSample {
  double avg_error = 0.0;
  double max_error = 0.0;
  double truth = 0.0;
  std::size_t node_count = 0;
};

/// Computes both error metrics for one sampling instant.
ErrorSample estimation_errors(std::span<const double> estimates,
                              double truth);

/// One timestamped point of an error time series.
struct ErrorPoint {
  double t_seconds = 0.0;
  ErrorSample sample;
};

using ErrorSeries = std::vector<ErrorPoint>;

}  // namespace croupier::metrics
