#include "metrics/graph.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/assert.hpp"

namespace croupier::metrics {

OverlayGraph OverlayGraph::build(
    const std::vector<std::pair<net::NodeId, std::vector<net::NodeId>>>&
        adjacency) {
  OverlayGraph g;
  g.ids_.reserve(adjacency.size());
  for (const auto& [id, _] : adjacency) {
    CROUPIER_ASSERT_MSG(!g.index_.contains(id), "duplicate vertex");
    g.index_.emplace(id, static_cast<std::uint32_t>(g.ids_.size()));
    g.ids_.push_back(id);
  }
  g.out_.resize(g.ids_.size());
  for (const auto& [id, neighbors] : adjacency) {
    auto& row = g.out_[g.index_.at(id)];
    for (net::NodeId n : neighbors) {
      if (n == id) continue;  // self-loop
      const auto it = g.index_.find(n);
      if (it == g.index_.end()) continue;  // edge to node outside snapshot
      row.push_back(it->second);
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    g.edge_count_ += row.size();
  }
  return g;
}

std::vector<std::size_t> OverlayGraph::in_degrees() const {
  std::vector<std::size_t> deg(ids_.size(), 0);
  for (const auto& row : out_) {
    for (std::uint32_t v : row) ++deg[v];
  }
  return deg;
}

std::map<std::size_t, std::size_t> OverlayGraph::in_degree_histogram() const {
  std::map<std::size_t, std::size_t> hist;
  for (std::size_t d : in_degrees()) ++hist[d];
  return hist;
}

double OverlayGraph::avg_path_length(sim::RngStream& rng,
                                     std::size_t max_sources,
                                     double* unreachable_fraction) const {
  if (ids_.empty()) return 0.0;

  std::vector<std::uint32_t> sources(ids_.size());
  std::iota(sources.begin(), sources.end(), 0);
  if (max_sources > 0 && max_sources < sources.size()) {
    rng.shuffle(std::span<std::uint32_t>(sources));
    sources.resize(max_sources);
  }

  std::uint64_t total_hops = 0;
  std::uint64_t reachable_pairs = 0;
  std::uint64_t considered_pairs = 0;
  std::vector<std::int32_t> dist(ids_.size());
  std::deque<std::uint32_t> frontier;

  for (std::uint32_t s : sources) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[s] = 0;
    frontier.clear();
    frontier.push_back(s);
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.front();
      frontier.pop_front();
      for (std::uint32_t v : out_[u]) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          frontier.push_back(v);
        }
      }
    }
    for (std::uint32_t v = 0; v < dist.size(); ++v) {
      if (v == s) continue;
      ++considered_pairs;
      if (dist[v] > 0) {
        total_hops += static_cast<std::uint64_t>(dist[v]);
        ++reachable_pairs;
      }
    }
  }

  if (unreachable_fraction != nullptr) {
    *unreachable_fraction =
        considered_pairs == 0
            ? 0.0
            : 1.0 - static_cast<double>(reachable_pairs) /
                        static_cast<double>(considered_pairs);
  }
  if (reachable_pairs == 0) return 0.0;
  return static_cast<double>(total_hops) /
         static_cast<double>(reachable_pairs);
}

double OverlayGraph::avg_clustering_coefficient() const {
  if (ids_.empty()) return 0.0;

  // Undirected projection as sorted neighbour lists.
  std::vector<std::vector<std::uint32_t>> und(ids_.size());
  for (std::uint32_t u = 0; u < out_.size(); ++u) {
    for (std::uint32_t v : out_[u]) {
      und[u].push_back(v);
      und[v].push_back(u);
    }
  }
  for (auto& row : und) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }

  auto linked = [&](std::uint32_t a, std::uint32_t b) {
    return std::binary_search(und[a].begin(), und[a].end(), b);
  };

  double sum = 0.0;
  for (std::uint32_t u = 0; u < und.size(); ++u) {
    const auto& nbrs = und[u];
    if (nbrs.size() < 2) continue;  // local coefficient defined as 0
    std::size_t links = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (linked(nbrs[i], nbrs[j])) ++links;
      }
    }
    const double possible =
        static_cast<double>(nbrs.size()) * (static_cast<double>(nbrs.size()) - 1.0) / 2.0;
    // detlint:allow(float-accum) vertex order is the builder's insertion
    // order; World::snapshot_overlay inserts ascending by id — fixed.
    sum += static_cast<double>(links) / possible;
  }
  return sum / static_cast<double>(ids_.size());
}

std::size_t OverlayGraph::largest_component() const {
  if (ids_.empty()) return 0;

  std::vector<std::vector<std::uint32_t>> und(ids_.size());
  for (std::uint32_t u = 0; u < out_.size(); ++u) {
    for (std::uint32_t v : out_[u]) {
      und[u].push_back(v);
      und[v].push_back(u);
    }
  }

  std::vector<bool> seen(ids_.size(), false);
  std::size_t best = 0;
  std::deque<std::uint32_t> frontier;
  for (std::uint32_t s = 0; s < ids_.size(); ++s) {
    if (seen[s]) continue;
    std::size_t size = 0;
    seen[s] = true;
    frontier.clear();
    frontier.push_back(s);
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.front();
      frontier.pop_front();
      ++size;
      for (std::uint32_t v : und[u]) {
        if (!seen[v]) {
          seen[v] = true;
          frontier.push_back(v);
        }
      }
    }
    best = std::max(best, size);
  }
  return best;
}

double OverlayGraph::largest_component_fraction() const {
  if (ids_.empty()) return 0.0;
  return static_cast<double>(largest_component()) /
         static_cast<double>(ids_.size());
}

}  // namespace croupier::metrics
