#include "metrics/overhead.hpp"

#include "common/assert.hpp"

namespace croupier::metrics {

ClassLoad summarize_load(
    const net::TrafficMeter& meter,
    std::span<const std::pair<net::NodeId, net::NatType>> classes,
    sim::Duration window) {
  CROUPIER_ASSERT(window > 0);
  const double secs = sim::to_seconds(window);

  double pub_bytes = 0.0;
  double priv_bytes = 0.0;
  ClassLoad load;
  for (const auto& [id, type] : classes) {
    const auto t = meter.totals(id);
    if (type == net::NatType::Public) {
      // detlint:allow(float-accum) summand order follows `classes`, which
      // callers pass sorted by node id (World::class_map) — byte-stable.
      pub_bytes += static_cast<double>(t.bytes_total());
      ++load.public_nodes;
    } else {
      // detlint:allow(float-accum) same fixed, caller-sorted order.
      priv_bytes += static_cast<double>(t.bytes_total());
      ++load.private_nodes;
    }
  }
  if (load.public_nodes > 0) {
    load.public_bytes_per_sec =
        pub_bytes / static_cast<double>(load.public_nodes) / secs;
  }
  if (load.private_nodes > 0) {
    load.private_bytes_per_sec =
        priv_bytes / static_cast<double>(load.private_nodes) / secs;
  }
  return load;
}

}  // namespace croupier::metrics
