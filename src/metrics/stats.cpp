#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace croupier::metrics {

double percentile(std::span<const double> values, double q) {
  CROUPIER_ASSERT(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  double sum = 0.0;
  // detlint:allow(float-accum) iterates a value-sorted copy — summand
  // order is a function of the values alone, not of input order.
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  double var = 0.0;
  // detlint:allow(float-accum) same value-sorted order as the mean.
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(sorted.size()));

  s.min = sorted.front();
  s.max = sorted.back();
  auto pct = [&sorted](double q) {
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  return s;
}

Histogram histogram(std::span<const double> values, double lo, double hi,
                    std::size_t bins) {
  CROUPIER_ASSERT(bins > 0);
  CROUPIER_ASSERT(hi > lo);
  Histogram h;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    if (v < lo) {
      ++h.underflow;
    } else if (!(v < hi)) {  // v >= hi, or NaN
      ++h.overflow;
    } else {
      // Rounding in (v - lo) / width can land exactly on `bins` for
      // values just under hi; keep those in the last bin.
      const auto bin = std::min(
          static_cast<std::size_t>((v - lo) / width), bins - 1);
      ++h.counts[bin];
    }
  }
  return h;
}

double ks_distance(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty() ? 0.0 : 1.0;
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  double best = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / static_cast<double>(sa.size());
    const double fb = static_cast<double>(ib) / static_cast<double>(sb.size());
    best = std::max(best, std::abs(fa - fb));
  }
  return best;
}

std::vector<double> to_doubles(std::span<const std::size_t> values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (std::size_t v : values) out.push_back(static_cast<double>(v));
  return out;
}

}  // namespace croupier::metrics
