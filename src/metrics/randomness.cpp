#include "metrics/randomness.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace croupier::metrics {

ChiSquareFit chi_square_uniform(std::span<const std::uint64_t> counts) {
  ChiSquareFit fit;
  if (counts.size() < 2) return fit;
  std::uint64_t total = 0;
  std::uint64_t sum_sq = 0;
  for (const std::uint64_t c : counts) {
    total += c;
    sum_sq += c * c;
  }
  if (total == 0) return fit;
  // With e = total/n per cell: chi2 = sum((o-e)^2)/e = n*sum(o^2)/total
  // - total. Both sums are exact integers; the doubles below are single
  // closed-form operations, so the result is bit-stable.
  const auto n = static_cast<double>(counts.size());
  fit.statistic = n * static_cast<double>(sum_sq) /
                      static_cast<double>(total) -
                  static_cast<double>(total);
  fit.dof = n - 1.0;
  fit.z = (fit.statistic - fit.dof) / std::sqrt(2.0 * fit.dof);
  return fit;
}

RandomnessPoint RandomnessAuditor::observe(const Adjacency& adjacency,
                                           const ClassMap& classes,
                                           double true_ratio,
                                           double t_seconds) {
  RandomnessPoint point;
  point.t_seconds = t_seconds;
  point.nodes = adjacency.size();

  // Class lookup for edge targets (point queries only — never iterated).
  std::unordered_map<net::NodeId, net::NatType> class_of;
  class_of.reserve(classes.size());
  for (const auto& [id, type] : classes) class_of.emplace(id, type);

  // One pass over the snapshot: accumulate in-degree, lag-1 overlap and
  // class tallies, all as exact integers.
  std::uint64_t cur_entries = 0;
  std::uint64_t overlap_entries = 0;
  std::uint64_t expected_num = 0;  // sum over nodes of |cur_i| * |prev_i|
  std::uint64_t lag_entries = 0;   // sum of |cur_i| over nodes with a prev
  std::uint64_t pub_entries = 0;
  std::map<net::NodeId, std::vector<net::NodeId>> next_prev;
  for (const auto& [id, neighbors] : adjacency) {
    std::vector<net::NodeId> sorted = neighbors;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    for (const net::NodeId target : sorted) {
      if (target == id) continue;
      ++indegree_[target];
      ++edges_observed_;
      ++cur_entries;
      const auto it = class_of.find(target);
      if (it != class_of.end() && it->second == net::NatType::Public) {
        ++pub_entries;
      }
    }

    if (const auto prev_it = prev_.find(id); prev_it != prev_.end()) {
      const auto& prev = prev_it->second;
      std::uint64_t cur_count = 0;
      for (const net::NodeId target : sorted) {
        if (target == id) continue;
        ++cur_count;
        if (std::binary_search(prev.begin(), prev.end(), target)) {
          ++overlap_entries;
        }
      }
      lag_entries += cur_count;
      expected_num += cur_count * static_cast<std::uint64_t>(prev.size());
    }
    next_prev.emplace(id, std::move(sorted));
  }
  prev_ = std::move(next_prev);

  // Drop in-degree history of nodes that left the snapshot (and their
  // observations from the cumulative total) — chi-square is over the
  // current membership only.
  for (auto it = indegree_.begin(); it != indegree_.end();) {
    if (prev_.contains(it->first)) {
      ++it;
    } else {
      edges_observed_ -= it->second;
      it = indegree_.erase(it);
    }
  }

  std::vector<std::uint64_t> counts;
  counts.reserve(indegree_.size());
  for (const auto& [id, count] : indegree_) counts.push_back(count);
  const ChiSquareFit fit = chi_square_uniform(counts);
  point.chi2 = fit.statistic;
  point.chi2_z = fit.z;
  point.edges_observed = edges_observed_;

  // Lag-1: expected overlap of a fresh uniform re-sample of |cur_i|
  // entries (out of n-1 candidates) with the previous |prev_i| entries
  // is |cur_i|*|prev_i|/(n-1); summed and normalized by total entries.
  if (lag_entries > 0 && adjacency.size() > 1) {
    point.repeat_observed = static_cast<double>(overlap_entries) /
                            static_cast<double>(lag_entries);
    point.repeat_expected =
        static_cast<double>(expected_num) /
        (static_cast<double>(adjacency.size() - 1) *
         static_cast<double>(lag_entries));
    if (point.repeat_expected > 0.0) {
      point.repeat_ratio = point.repeat_observed / point.repeat_expected;
    }
  }

  if (cur_entries > 0) {
    point.public_fraction = static_cast<double>(pub_entries) /
                            static_cast<double>(cur_entries);
    point.public_expected = true_ratio;
    if (true_ratio > 0.0) {
      point.bias_ratio = point.public_fraction / true_ratio;
    }
  }
  return point;
}

void RandomnessAuditor::reset() {
  indegree_.clear();
  prev_.clear();
  edges_observed_ = 0;
}

}  // namespace croupier::metrics
