// O(sample) streaming estimators of the overlay-randomness metrics.
//
// The exact metrics (metrics/graph.hpp) materialize the whole overlay —
// O(n + E) memory for the snapshot plus O(n·E) BFS work — which is fine
// at 10^3..10^4 nodes and impossible per-tick at 10^6. The estimators
// here never materialize the graph: they probe a bounded sample of
// nodes through a neighbor callback against the *implicit* graph (each
// protocol's live view) and pay O(sample) per tick:
//
//  - out-degree / edge sampling: probe K uniform sources per tick;
//  - in-degree concentration: every probed edge is a hit on its target;
//    hits accumulate across ticks and the population coefficient of
//    variation is recovered with the sampling (Poisson) noise variance
//    subtracted;
//  - path length: full or budget-capped BFS from a few sources toward a
//    handful of sampled targets (distances are exact for measured
//    pairs; the estimate error is pair-sampling error);
//  - clustering: per sampled node, link tests among its out-neighbors
//    in either edge direction (the out-neighborhood estimator of the
//    exact metric's undirected projection);
//  - components: union-find fed by the probed edges, accumulated across
//    ticks and reset at membership epochs (kills), tracking the largest
//    observed component incrementally.
//
// Accuracy against the exact metrics is pinned by
// tests/streaming_metrics_test.cpp on 10^2..10^3-node graphs; tolerance
// notes live in docs/SPEC_REFERENCE.md.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "sim/rng.hpp"

namespace croupier::metrics {

/// Incremental connected-component tracker over observed (undirected)
/// edges. Union-find with path halving + union by size; the largest
/// component size is maintained as edges arrive.
class ComponentTracker {
 public:
  void reset();

  /// Registers a node (isolated until an edge touches it).
  void add_node(net::NodeId a);

  /// Registers an undirected edge observation.
  void add_edge(net::NodeId a, net::NodeId b);

  [[nodiscard]] std::size_t node_count() const { return parent_.size(); }
  [[nodiscard]] std::size_t largest() const { return largest_; }
  [[nodiscard]] double largest_fraction() const {
    return parent_.empty() ? 0.0
                           : static_cast<double>(largest_) /
                                 static_cast<double>(parent_.size());
  }

 private:
  std::uint32_t intern(net::NodeId a);
  std::uint32_t find(std::uint32_t x);

  std::unordered_map<net::NodeId, std::uint32_t> index_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t largest_ = 0;
};

struct StreamingGraphConfig {
  /// Sources probed per tick for degree/in-degree/component sampling.
  std::size_t degree_probes = 64;
  /// BFS sources per tick for the path-length estimate.
  std::size_t path_sources = 4;
  /// Sampled targets per BFS source.
  std::size_t path_targets = 16;
  /// Max nodes a single BFS may expand; 0 = unbounded. When the budget
  /// stops a BFS early, its unresolved targets are censored (dropped
  /// from both the path-length and unreachable estimates) rather than
  /// miscounted as unreachable.
  std::size_t bfs_budget = 2'000'000;
  /// Nodes probed per tick for the clustering estimate.
  std::size_t cluster_probes = 32;
};

/// One tick's estimates. Degree, path, and clustering figures are
/// per-tick snapshots; in-degree concentration and component tracking
/// accumulate across ticks (until reset at a membership epoch).
struct StreamingGraphStats {
  double t_seconds = 0.0;  // stamped by the recorder
  double avg_path_length = 0.0;
  double unreachable_fraction = 0.0;
  double clustering_coefficient = 0.0;
  double mean_out_degree = 0.0;
  /// Coefficient of variation of the in-degree distribution (0 for a
  /// perfectly balanced overlay; ~1/sqrt(d) for a random d-regular-out
  /// overlay), estimated from accumulated edge probes with the sampling
  /// noise subtracted.
  double in_degree_cv = 0.0;
  /// Largest observed component as a fraction of the nodes the
  /// component tracker has seen so far (warms up over ticks).
  double largest_component_fraction = 0.0;
  std::size_t population = 0;       // gossiping vertices at tick time
  std::size_t component_nodes = 0;  // distinct nodes seen by union-find
  std::uint64_t edge_samples = 0;   // cumulative probed edges
  std::size_t path_pairs = 0;       // pairs with a measured distance
  std::size_t bfs_truncated = 0;    // budget-stopped BFS runs this tick
};

class StreamingGraphEstimator {
 public:
  /// Fills `out` (cleared first) with the node's current out-neighbors
  /// and returns true, or returns false if the node is not a graph
  /// vertex right now (dead, or still identifying its NAT).
  using NeighborFn =
      std::function<bool(net::NodeId, std::vector<net::NodeId>&)>;
  /// O(1) "is this id a graph vertex right now" predicate.
  using VertexFn = std::function<bool(net::NodeId)>;

  explicit StreamingGraphEstimator(StreamingGraphConfig cfg = {})
      : cfg_(cfg) {}

  [[nodiscard]] const StreamingGraphConfig& config() const { return cfg_; }

  /// Drops all cross-tick accumulators (in-degree hits, components).
  /// Call at membership epochs — the accumulated observations describe
  /// a graph that no longer exists.
  void reset_accumulators();

  /// Runs one sampling pass. `candidates` is the id universe to draw
  /// from (may contain non-vertices; they are rejected via `is_vertex`),
  /// `population` the number of actual vertices among them.
  StreamingGraphStats tick(std::span<const net::NodeId> candidates,
                           std::size_t population,
                           const NeighborFn& neighbors,
                           const VertexFn& is_vertex, sim::RngStream& rng);

 private:
  /// Draws a uniform vertex from `candidates` (bounded rejection against
  /// non-vertices); kNilNode if none found.
  net::NodeId draw_vertex(std::span<const net::NodeId> candidates,
                          const VertexFn& is_vertex, sim::RngStream& rng);

  StreamingGraphConfig cfg_;

  // Cross-tick accumulators.
  ComponentTracker components_;
  std::unordered_map<net::NodeId, std::uint64_t> indeg_hits_;
  std::uint64_t indeg_probes_ = 0;     // sources probed (cumulative)
  std::uint64_t edge_samples_ = 0;     // sum of hits
  std::uint64_t edge_samples_sq_ = 0;  // sum of hits^2, kept incrementally
};

}  // namespace croupier::metrics
