// Overlay graph snapshots and the randomness metrics of paper fig. 6/7b.
//
// A snapshot is a directed graph whose vertices are (a subset of) the live
// nodes and whose edges are view entries. The metrics follow the
// definitions the paper uses:
//  - in-degree distribution (fig 6a): edges pointing at each node;
//  - average path length (fig 6b): BFS hop count over directed edges,
//    averaged over reachable ordered pairs (optionally from a sampled set
//    of source vertices for large graphs);
//  - clustering coefficient (fig 6c): average local clustering on the
//    undirected projection;
//  - largest connected cluster (fig 7b): biggest weakly-connected
//    component, as a fraction of vertices.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "sim/rng.hpp"

namespace croupier::metrics {

class OverlayGraph {
 public:
  /// Builds from (node, out-neighbour list) pairs. Self-loops and edges to
  /// unknown vertices are dropped; duplicate edges collapse.
  static OverlayGraph build(
      const std::vector<std::pair<net::NodeId, std::vector<net::NodeId>>>&
          adjacency);

  [[nodiscard]] std::size_t node_count() const { return out_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// In-degree of every vertex (index-aligned with ids()).
  [[nodiscard]] std::vector<std::size_t> in_degrees() const;

  /// Histogram: in-degree -> number of nodes (paper fig. 6a).
  [[nodiscard]] std::map<std::size_t, std::size_t> in_degree_histogram()
      const;

  /// Average shortest-path length over directed reachable pairs. When
  /// `max_sources` > 0 and smaller than the vertex count, BFS runs from
  /// that many uniformly sampled sources (keeps fig. 6b tractable at
  /// 1000+ nodes). Unreachable pairs are excluded; their fraction is
  /// reported through `unreachable_fraction` if non-null.
  [[nodiscard]] double avg_path_length(sim::RngStream& rng,
                                       std::size_t max_sources = 0,
                                       double* unreachable_fraction =
                                           nullptr) const;

  /// Mean local clustering coefficient on the undirected projection.
  [[nodiscard]] double avg_clustering_coefficient() const;

  /// Size of the largest weakly-connected component.
  [[nodiscard]] std::size_t largest_component() const;

  /// Largest component as a fraction of all vertices (0 for empty graph).
  [[nodiscard]] double largest_component_fraction() const;

  [[nodiscard]] const std::vector<net::NodeId>& ids() const { return ids_; }

 private:
  std::vector<net::NodeId> ids_;                      // dense index -> id
  std::unordered_map<net::NodeId, std::uint32_t> index_;
  std::vector<std::vector<std::uint32_t>> out_;       // directed adjacency
  std::size_t edge_count_ = 0;
};

}  // namespace croupier::metrics
