// Summary-statistics helpers used by the benches, examples and tests:
// moments, percentiles, histograms, and the Kolmogorov-Smirnov distance
// (the paper's maximum-error metric is KS-style; the full statistic is
// useful when comparing in-degree distributions between systems, fig 6a).
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

namespace croupier::metrics {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Full summary of a sample (O(n log n); copies the input to sort it).
Summary summarize(std::span<const double> values);

/// Percentile by linear interpolation between closest ranks; q in [0,1].
double percentile(std::span<const double> values, double q);

/// Fixed-width-bin histogram over [lo, hi) plus counts of the samples
/// that fell outside the range. Out-of-range samples are *excluded* from
/// the bins (an earlier version clamped them into the first/last bin,
/// silently inflating the tails); NaN counts as overflow.
struct Histogram {
  std::vector<std::size_t> counts;  // one entry per bin over [lo, hi)
  std::size_t underflow = 0;        // samples < lo
  std::size_t overflow = 0;         // samples >= hi (and NaN)

  [[nodiscard]] std::size_t outliers() const { return underflow + overflow; }
};

Histogram histogram(std::span<const double> values, double lo, double hi,
                    std::size_t bins);

/// Two-sample Kolmogorov-Smirnov distance: the maximum gap between the
/// empirical CDFs. 0 = identical distributions, 1 = disjoint.
double ks_distance(std::span<const double> a, std::span<const double> b);

/// Convenience: integer counts (e.g. in-degrees) to double samples.
std::vector<double> to_doubles(std::span<const std::size_t> values);

}  // namespace croupier::metrics
