// Project-wide assertion macro.
//
// CROUPIER_ASSERT guards against programmer errors (broken invariants,
// out-of-contract calls). It is active in all build types: simulation
// results are only trustworthy if invariants are enforced in the builds
// that produce them.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace croupier::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "CROUPIER_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace croupier::detail

#define CROUPIER_ASSERT(expr)                                              \
  ((expr) ? static_cast<void>(0)                                           \
          : ::croupier::detail::assert_fail(#expr, __FILE__, __LINE__,     \
                                            nullptr))

#define CROUPIER_ASSERT_MSG(expr, msg)                                     \
  ((expr) ? static_cast<void>(0)                                           \
          : ::croupier::detail::assert_fail(#expr, __FILE__, __LINE__, msg))
